open Ch_lang
open Ch_lang.Term
open Context

type rule =
  | R_bind
  | R_put_char
  | R_get_char
  | R_sleep
  | R_put_mvar
  | R_take_mvar
  | R_new_mvar
  | R_fork
  | R_thread_id
  | R_propagate
  | R_catch
  | R_handle
  | R_return_gc
  | R_throw_gc
  | R_proc_gc
  | R_eval
  | R_raise
  | R_block_return
  | R_unblock_return
  | R_block_throw
  | R_unblock_throw
  | R_throw_to
  | R_receive
  | R_interrupt
  | R_stuck_put_char
  | R_stuck_get_char
  | R_stuck_sleep
  | R_stuck_put_mvar
  | R_stuck_take_mvar

let rule_name = function
  | R_bind -> "(Bind)"
  | R_put_char -> "(PutChar)"
  | R_get_char -> "(GetChar)"
  | R_sleep -> "(Sleep)"
  | R_put_mvar -> "(PutMVar)"
  | R_take_mvar -> "(TakeMVar)"
  | R_new_mvar -> "(NewMVar)"
  | R_fork -> "(Fork)"
  | R_thread_id -> "(ThreadId)"
  | R_propagate -> "(Propagate)"
  | R_catch -> "(Catch)"
  | R_handle -> "(Handle)"
  | R_return_gc -> "(Return GC)"
  | R_throw_gc -> "(Throw GC)"
  | R_proc_gc -> "(Proc GC)"
  | R_eval -> "(Eval)"
  | R_raise -> "(Raise)"
  | R_block_return -> "(Block Return)"
  | R_unblock_return -> "(Unblock Return)"
  | R_block_throw -> "(Block Throw)"
  | R_unblock_throw -> "(Unblock Throw)"
  | R_throw_to -> "(ThrowTo)"
  | R_receive -> "(Receive)"
  | R_interrupt -> "(Interrupt)"
  | R_stuck_put_char -> "(Stuck PutChar)"
  | R_stuck_get_char -> "(Stuck GetChar)"
  | R_stuck_sleep -> "(Stuck Sleep)"
  | R_stuck_put_mvar -> "(Stuck PutMVar)"
  | R_stuck_take_mvar -> "(Stuck TakeMVar)"

let rule_figure = function
  | R_bind | R_put_char | R_get_char | R_sleep | R_put_mvar | R_take_mvar
  | R_new_mvar | R_fork | R_thread_id | R_propagate | R_catch | R_handle
  | R_return_gc | R_throw_gc | R_proc_gc | R_eval | R_raise ->
      4
  | R_block_return | R_unblock_return | R_block_throw | R_unblock_throw
  | R_throw_to | R_receive | R_interrupt | R_stuck_put_char | R_stuck_get_char
  | R_stuck_sleep | R_stuck_put_mvar | R_stuck_take_mvar ->
      5

let all_rules =
  [
    R_bind; R_put_char; R_get_char; R_sleep; R_put_mvar; R_take_mvar;
    R_new_mvar; R_fork; R_thread_id; R_propagate; R_catch; R_handle;
    R_return_gc; R_throw_gc; R_proc_gc; R_eval; R_raise; R_block_return;
    R_unblock_return; R_block_throw; R_unblock_throw; R_throw_to; R_receive;
    R_interrupt; R_stuck_put_char; R_stuck_get_char; R_stuck_sleep;
    R_stuck_put_mvar; R_stuck_take_mvar;
  ]

type label = Out_char of char | In_char of char | Time of int
type actor = Thread_step of Term.tid | Delivery of int | Global

type transition = {
  rule : rule;
  actor : actor;
  label : label option;
  next : State.t;
}

type config = {
  fuel : int;
  default_mask : Context.mask;
  fork_inherits_mask : bool;
  stuck_io : bool;
}

let default_config =
  {
    fuel = Ch_pure.Eval.default_fuel;
    default_mask = Unmasked;
    fork_inherits_mask = false;
    stuck_io = true;
  }

(* Transitions of one thread's evaluation site. Action rules apply to both
   runnable and stuck threads (completing the operation wakes a stuck
   thread); the stuckness rules move a runnable thread to the stuck state so
   that (Interrupt) — which works in any masking context — becomes
   applicable. *)
let thread_transitions config (st : State.t) tid code status =
  let z = decompose code in
  let step ?label rule redex' =
    {
      rule;
      actor = Thread_step tid;
      label;
      next = State.set_thread st tid (State.Active (with_redex z redex', Runnable));
    }
  in
  let finish rule outcome =
    {
      rule;
      actor = Thread_step tid;
      label = None;
      next = State.set_thread st tid (State.Finished outcome);
    }
  in
  let stuck rule =
    (* Only offered from the runnable state: a stuck-to-stuck transition
       would be an identity self-loop. *)
    if status = State.Runnable then
      [
        {
          rule;
          actor = Thread_step tid;
          label = None;
          next = State.set_thread st tid (State.Active (code, State.Stuck_thread));
        };
      ]
    else []
  in
  let io_stuck rule = if config.stuck_io then stuck rule else [] in
  match z.redex with
  | Return n -> (
      match z.frames with
      | F_bind m :: frames ->
          [ { (step R_bind (Return n)) with
              next =
                State.set_thread st tid
                  (State.Active (recompose { frames; redex = App (m, n) },
                                 Runnable)) } ]
      | F_catch _ :: frames ->
          [ { (step R_handle (Return n)) with
              next =
                State.set_thread st tid
                  (State.Active (recompose { frames; redex = Return n },
                                 Runnable)) } ]
      | F_block :: frames ->
          [ { (step R_block_return (Return n)) with
              next =
                State.set_thread st tid
                  (State.Active (recompose { frames; redex = Return n },
                                 Runnable)) } ]
      | F_unblock :: frames ->
          [ { (step R_unblock_return (Return n)) with
              next =
                State.set_thread st tid
                  (State.Active (recompose { frames; redex = Return n },
                                 Runnable)) } ]
      | [] -> [ finish R_return_gc (State.Done n) ])
  | Throw (Lit_exn e) -> (
      match z.frames with
      | F_bind _ :: frames ->
          [ { (step R_propagate (Return unit_v)) with
              next =
                State.set_thread st tid
                  (State.Active
                     (recompose { frames; redex = Throw (Lit_exn e) },
                      Runnable)) } ]
      | F_catch h :: frames ->
          [ { (step R_catch (Return unit_v)) with
              next =
                State.set_thread st tid
                  (State.Active
                     (recompose { frames; redex = App (h, Lit_exn e) },
                      Runnable)) } ]
      | F_block :: frames ->
          [ { (step R_block_throw (Return unit_v)) with
              next =
                State.set_thread st tid
                  (State.Active
                     (recompose { frames; redex = Throw (Lit_exn e) },
                      Runnable)) } ]
      | F_unblock :: frames ->
          [ { (step R_unblock_throw (Return unit_v)) with
              next =
                State.set_thread st tid
                  (State.Active
                     (recompose { frames; redex = Throw (Lit_exn e) },
                      Runnable)) } ]
      | [] -> [ finish R_throw_gc (State.Threw e) ])
  | Put_char (Lit_char c) ->
      let write =
        { (step ~label:(Out_char c) R_put_char (Return unit_v)) with
          next =
            (let st = { st with State.output = c :: st.State.output } in
             State.set_thread st tid
               (State.Active (with_redex z (Return unit_v), Runnable))) }
      in
      write :: io_stuck R_stuck_put_char
  | Get_char ->
      let read =
        match st.State.input with
        | c :: input ->
            [ { (step ~label:(In_char c) R_get_char (Return (Lit_char c))) with
                next =
                  (let st = { st with State.input = input } in
                   State.set_thread st tid
                     (State.Active (with_redex z (Return (Lit_char c)),
                                    Runnable))) } ]
        | [] -> []
      in
      read @ io_stuck R_stuck_get_char
  | Sleep (Lit_int d) ->
      step ~label:(Time d) R_sleep (Return unit_v) :: io_stuck R_stuck_sleep
  | Take_mvar (Mvar m) -> (
      match State.mvar st m with
      | Some (Some v) ->
          [ { (step R_take_mvar (Return v)) with
              next =
                (let st = State.set_mvar st m None in
                 State.set_thread st tid
                   (State.Active (with_redex z (Return v), Runnable))) } ]
      | Some None -> stuck R_stuck_take_mvar
      | None -> [] (* reference to an unknown MVar: ill-typed *))
  | Put_mvar (Mvar m, payload) -> (
      match State.mvar st m with
      | Some None ->
          [ { (step R_put_mvar (Return unit_v)) with
              next =
                (let st = State.set_mvar st m (Some payload) in
                 State.set_thread st tid
                   (State.Active (with_redex z (Return unit_v), Runnable))) } ]
      | Some (Some _) -> stuck R_stuck_put_mvar
      | None -> [])
  | New_mvar ->
      let m = st.State.next_mvar in
      [ { (step R_new_mvar (Return (Mvar m))) with
          next =
            (let st =
               { st with
                 State.mvars = st.State.mvars @ [ (m, None) ];
                 next_mvar = m + 1 }
             in
             State.set_thread st tid
               (State.Active (with_redex z (Return (Mvar m)), Runnable))) } ]
  | Fork body ->
      let u = st.State.next_tid in
      let child =
        if config.fork_inherits_mask
           && mask_of ~default:config.default_mask z.frames = Masked
        then Block body
        else body
      in
      [ { (step R_fork (Return (Tid u))) with
          next =
            (let st =
               { st with
                 State.threads =
                   st.State.threads @ [ (u, State.Active (child, State.Runnable)) ];
                 next_tid = u + 1 }
             in
             State.set_thread st tid
               (State.Active (with_redex z (Return (Tid u)), Runnable))) } ]
  | My_tid -> [ step R_thread_id (Return (Tid tid)) ]
  | Throw_to (Tid u, Lit_exn e) ->
      let k = st.State.next_inflight in
      [ { (step R_throw_to (Return unit_v)) with
          next =
            (let st =
               { st with
                 State.inflight =
                   st.State.inflight @ [ (k, { State.target = u; exn = e }) ];
                 next_inflight = k + 1 }
             in
             State.set_thread st tid
               (State.Active (with_redex z (Return unit_v), Runnable))) } ]
  | redex when not (is_value redex) -> (
      match Ch_pure.Eval.eval ~fuel:config.fuel redex with
      | Value v -> [ step R_eval v ]
      | Raised e -> [ step R_raise (Throw (Lit_exn e)) ]
      | Diverged | Stuck _ -> [])
  | _ -> [] (* a value at the evaluation site that no rule matches *)

let receive_transitions config (st : State.t) =
  List.concat_map
    (fun (k, { State.target; exn }) ->
      match State.thread st target with
      | Some (State.Active (code, State.Runnable)) ->
          let z = decompose code in
          if mask_of ~default:config.default_mask z.frames = Unmasked then
            [
              {
                rule = R_receive;
                actor = Delivery k;
                label = None;
                next =
                  (let st =
                     {
                       st with
                       State.inflight =
                         List.remove_assoc k st.State.inflight;
                     }
                   in
                   State.set_thread st target
                     (State.Active
                        (with_redex z (Throw (Lit_exn exn)), State.Runnable)));
              };
            ]
          else []
      | Some (State.Active (code, State.Stuck_thread)) ->
          let z = decompose code in
          [
            {
              rule = R_interrupt;
              actor = Delivery k;
              label = None;
              next =
                (let st =
                   {
                     st with
                     State.inflight = List.remove_assoc k st.State.inflight;
                   }
                 in
                 State.set_thread st target
                   (State.Active
                      (with_redex z (Throw (Lit_exn exn)), State.Runnable)));
            };
          ]
      | Some (State.Finished _) | None -> [])
    st.State.inflight

let proc_gc_transition (st : State.t) =
  match State.main_result st with
  | Some _
    when List.length st.State.threads > 1
         || st.State.mvars <> [] || st.State.inflight <> [] ->
      [
        {
          rule = R_proc_gc;
          actor = Global;
          label = None;
          next =
            {
              st with
              State.threads =
                List.filter (fun (t, _) -> t = st.State.main) st.State.threads;
              mvars = [];
              inflight = [];
            };
        };
      ]
  | Some _ | None -> []

let enumerate ?(config = default_config) (st : State.t) =
  let per_thread =
    List.concat_map
      (fun (tid, th) ->
        match th with
        | State.Active (code, status) ->
            thread_transitions config st tid code status
        | State.Finished _ -> [])
      st.State.threads
  in
  per_thread @ receive_transitions config st @ proc_gc_transition st

type stall = Waiting | Diverging | Ill_typed of string

let thread_stall config (st : State.t) tid =
  match State.thread st tid with
  | None | Some (State.Finished _) -> None
  | Some (State.Active (code, status)) -> (
      if thread_transitions config st tid code status <> [] then None
      else
        let z = decompose code in
        match z.redex with
        | Take_mvar (Mvar m) | Put_mvar (Mvar m, _) -> (
            match State.mvar st m with
            | Some _ -> Some Waiting
            | None -> Some (Ill_typed "reference to unknown MVar"))
        | Get_char -> Some Waiting
        | redex when not (is_value redex) -> (
            match Ch_pure.Eval.eval ~fuel:config.fuel redex with
            | Diverged -> Some Diverging
            | Stuck msg -> Some (Ill_typed msg)
            | Value _ | Raised _ -> None)
        | redex ->
            Some
              (Ill_typed
                 (Printf.sprintf "no rule matches value %s at evaluation site"
                    (Pretty.term_to_string redex))))

let blocked_reasons ?(config = default_config) (st : State.t) =
  List.filter_map
    (fun (tid, th) ->
      match th with
      | State.Finished _ -> None
      | State.Active (code, _) -> (
          match thread_stall config st tid with
          | Some Waiting -> (
              match (decompose code).redex with
              | Take_mvar (Mvar m) -> Some (tid, "takeMVar", Some m)
              | Put_mvar (Mvar m, _) -> Some (tid, "putMVar", Some m)
              | Get_char -> Some (tid, "getChar", None)
              | _ -> None)
          | _ -> None))
    st.State.threads
