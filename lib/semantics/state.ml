open Ch_lang
open Ch_lang.Term

type status = Runnable | Stuck_thread
type finished = Done of Term.term | Threw of Term.exn_name
type thread = Active of Term.term * status | Finished of finished
type inflight = { target : Term.tid; exn : Term.exn_name }

type t = {
  threads : (Term.tid * thread) list;
  mvars : (Term.mvar_name * Term.term option) list;
  inflight : (int * inflight) list;
  input : char list;
  output : char list;
  next_tid : int;
  next_mvar : int;
  next_inflight : int;
  main : Term.tid;
}

let initial ?(input = "") m =
  {
    threads = [ (0, Active (m, Runnable)) ];
    mvars = [];
    inflight = [];
    input = List.init (String.length input) (String.get input);
    output = [];
    next_tid = 1;
    next_mvar = 0;
    next_inflight = 0;
    main = 0;
  }

let main_result st =
  match List.assoc_opt st.main st.threads with
  | Some (Finished f) -> Some f
  | Some (Active _) | None -> None

let output_string st =
  let chars = List.rev st.output in
  String.init (List.length chars) (List.nth chars)

let thread st tid = List.assoc_opt tid st.threads
let mvar st m = List.assoc_opt m st.mvars

let set_thread st tid th =
  {
    st with
    threads =
      List.map (fun (i, t) -> if i = tid then (i, th) else (i, t)) st.threads;
  }

let set_mvar st m v =
  {
    st with
    mvars = List.map (fun (i, c) -> if i = m then (i, v) else (i, c)) st.mvars;
  }

(* --- Canonical keys (structural congruence + α-equivalence) ------------- *)

(* Renaming maps are built by first occurrence: threads in creation order,
   then MVar/thread names as they appear inside the terms, then any
   remaining declared names. *)
let build_renaming st =
  let tid_map = Hashtbl.create 8 and mvar_map = Hashtbl.create 8 in
  let next_t = ref 0 and next_m = ref 0 in
  let see_tid t =
    if not (Hashtbl.mem tid_map t) then begin
      Hashtbl.add tid_map t !next_t;
      incr next_t
    end
  in
  let see_mvar m =
    if not (Hashtbl.mem mvar_map m) then begin
      Hashtbl.add mvar_map m !next_m;
      incr next_m
    end
  in
  let rec scan = function
    | Mvar m -> see_mvar m
    | Tid t -> see_tid t
    | Var _ | Lit_int _ | Lit_char _ | Lit_exn _ | Get_char | New_mvar
    | My_tid ->
        ()
    | Lam (_, a) | Fix a | Raise a | Return a | Put_char a | Take_mvar a
    | Sleep a | Throw a | Block a | Unblock a | Fork a ->
        scan a
    | App (a, b) | Prim (_, a, b) | Bind (a, b) | Put_mvar (a, b)
    | Catch (a, b) | Throw_to (a, b) ->
        scan a;
        scan b
    | Con (_, ms) -> List.iter scan ms
    | If (a, b, c) ->
        scan a;
        scan b;
        scan c
    | Case (s, alts) ->
        scan s;
        List.iter
          (function Alt (_, _, b) -> scan b | Default (_, b) -> scan b)
          alts
    | Let (_, a, b) ->
        scan a;
        scan b
  in
  List.iter
    (fun (tid, th) ->
      see_tid tid;
      match th with
      | Active (m, _) -> scan m
      | Finished (Done m) -> scan m
      | Finished (Threw _) -> ())
    st.threads;
  List.iter
    (fun (m, contents) ->
      see_mvar m;
      match contents with Some v -> scan v | None -> ())
    st.mvars;
  List.iter (fun (_, i) -> see_tid i.target) st.inflight;
  let tid_of t = match Hashtbl.find_opt tid_map t with
    | Some t' -> t'
    | None -> t
  and mvar_of m = match Hashtbl.find_opt mvar_map m with
    | Some m' -> m'
    | None -> m
  in
  (tid_of, mvar_of)

(* Renders a term into [buf] with bound variables as de-Bruijn levels and
   runtime names renamed, so the result is α-insensitive. *)
let render_term ~tid_of ~mvar_of buf term =
  let add = Buffer.add_string buf in
  let rec go env depth m =
    match m with
    | Var x -> (
        match List.assoc_opt x env with
        | Some i -> add (Printf.sprintf "b%d" i)
        | None ->
            add "v:";
            add x)
    | Lam (x, a) ->
        add (Printf.sprintf "(\\%d." depth);
        go ((x, depth) :: env) (depth + 1) a;
        add ")"
    | App (a, b) -> binary "@" a b env depth
    | Con (c, ms) ->
        add "(C:";
        add c;
        List.iter
          (fun m ->
            add " ";
            go env depth m)
          ms;
        add ")"
    | Lit_int i -> add (string_of_int i)
    | Lit_char c -> add (Printf.sprintf "%C" c)
    | Lit_exn e ->
        add "#";
        add e
    | Mvar m -> add (Printf.sprintf "m%d" (mvar_of m))
    | Tid t -> add (Printf.sprintf "t%d" (tid_of t))
    | Prim (op, a, b) -> binary (Fmt.str "%a" Pretty.pp_prim_op op) a b env depth
    | If (a, b, c) ->
        add "(if ";
        go env depth a;
        add " ";
        go env depth b;
        add " ";
        go env depth c;
        add ")"
    | Case (s, alts) ->
        add "(case ";
        go env depth s;
        List.iter
          (function
            | Alt (c, xs, b) ->
                add (Printf.sprintf " [%s/%d " c (List.length xs));
                let env' =
                  List.mapi (fun i x -> (x, depth + i)) xs @ env
                in
                go env' (depth + List.length xs) b;
                add "]"
            | Default (x, b) ->
                add (Printf.sprintf " [_%d " depth);
                go ((x, depth) :: env) (depth + 1) b;
                add "]")
          alts;
        add ")"
    | Let (x, a, b) ->
        add (Printf.sprintf "(let%d " depth);
        go env depth a;
        add " ";
        go ((x, depth) :: env) (depth + 1) b;
        add ")"
    | Fix a -> unary "fix" a env depth
    | Raise a -> unary "raise" a env depth
    | Return a -> unary "ret" a env depth
    | Bind (a, b) -> binary ">>=" a b env depth
    | Put_char a -> unary "putc" a env depth
    | Get_char -> add "getc"
    | New_mvar -> add "newmv"
    | Take_mvar a -> unary "take" a env depth
    | Put_mvar (a, b) -> binary "put" a b env depth
    | Sleep a -> unary "sleep" a env depth
    | Throw a -> unary "throw" a env depth
    | Catch (a, b) -> binary "catch" a b env depth
    | Throw_to (a, b) -> binary "thto" a b env depth
    | Block a -> unary "blk" a env depth
    | Unblock a -> unary "ublk" a env depth
    | Fork a -> unary "fork" a env depth
    | My_tid -> add "mytid"
  and unary tag a env depth =
    add "(";
    add tag;
    add " ";
    go env depth a;
    add ")"
  and binary tag a b env depth =
    add "(";
    add tag;
    add " ";
    go env depth a;
    add " ";
    go env depth b;
    add ")"
  in
  go [] 0 term

let canonical_key st =
  let tid_of, mvar_of = build_renaming st in
  let buf = Buffer.create 256 in
  let add = Buffer.add_string buf in
  let render = render_term ~tid_of ~mvar_of buf in
  List.iter
    (fun (tid, th) ->
      add (Printf.sprintf "T%d" (tid_of tid));
      (match th with
      | Active (m, Runnable) ->
          add "o:";
          render m
      | Active (m, Stuck_thread) ->
          add "x:";
          render m
      | Finished (Done m) ->
          add "d:";
          render m
      | Finished (Threw e) ->
          add "e:";
          add e);
      add ";")
    st.threads;
  List.iter
    (fun (m, contents) ->
      add (Printf.sprintf "M%d" (mvar_of m));
      (match contents with
      | None -> add "()"
      | Some v ->
          add ":";
          render v);
      add ";")
    st.mvars;
  (* In-flight exceptions whose target has finished are inert; drop them and
     sort the rest so delivery bookkeeping does not distinguish states. *)
  let live =
    List.filter_map
      (fun (_, i) ->
        match List.assoc_opt i.target st.threads with
        | Some (Finished _) -> None
        | Some (Active _) -> Some (tid_of i.target, i.exn)
        | None -> None)
      st.inflight
  in
  List.iter
    (fun (t, e) -> add (Printf.sprintf "F%d<=%s;" t e))
    (List.sort compare live);
  add "I:";
  List.iter (Buffer.add_char buf) st.input;
  add ";O:";
  List.iter (Buffer.add_char buf) (List.rev st.output);
  Buffer.contents buf

let pp ppf st =
  let pp_thread ppf (tid, th) =
    match th with
    | Active (m, Runnable) ->
        Fmt.pf ppf "@[<2>⟨%a⟩t%d/○@]" Pretty.pp_term m tid
    | Active (m, Stuck_thread) ->
        Fmt.pf ppf "@[<2>⟨%a⟩t%d/⊗@]" Pretty.pp_term m tid
    | Finished (Done m) -> Fmt.pf ppf "⊙t%d(=%a)" tid Pretty.pp_term m
    | Finished (Threw e) -> Fmt.pf ppf "⊙t%d(#%s)" tid e
  in
  let pp_mvar ppf (m, contents) =
    match contents with
    | None -> Fmt.pf ppf "⟨⟩m%d" m
    | Some v -> Fmt.pf ppf "@[<2>⟨%a⟩m%d@]" Pretty.pp_term v m
  in
  let pp_inflight ppf (_, i) = Fmt.pf ppf "⟦t%d ⇐ %s⟧" i.target i.exn in
  let sep = Fmt.any "@ | " in
  Fmt.pf ppf "@[<hv>%a" Fmt.(list ~sep pp_thread) st.threads;
  if st.mvars <> [] then Fmt.pf ppf " |@ %a" Fmt.(list ~sep pp_mvar) st.mvars;
  if st.inflight <> [] then
    Fmt.pf ppf " |@ %a" Fmt.(list ~sep pp_inflight) st.inflight;
  if st.output <> [] then Fmt.pf ppf " |@ out=%S" (output_string st);
  Fmt.pf ppf "@]"
