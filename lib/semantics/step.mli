(** The transition rules of Figures 4 and 5, as an enumerator of all
    possible transitions from a program state.

    Nondeterminism is explicit: {!enumerate} returns every transition any
    rule allows, and the exploration layer ({!Ch_explore}) chooses among
    them (a scheduler picks one; the model checker follows all). *)

open Ch_lang

type rule =
  (* Figure 4 *)
  | R_bind
  | R_put_char
  | R_get_char
  | R_sleep
  | R_put_mvar
  | R_take_mvar
  | R_new_mvar
  | R_fork
  | R_thread_id
  | R_propagate
  | R_catch
  | R_handle
  | R_return_gc
  | R_throw_gc
  | R_proc_gc
  | R_eval
  | R_raise
  (* Figure 5 *)
  | R_block_return
  | R_unblock_return
  | R_block_throw
  | R_unblock_throw
  | R_throw_to
  | R_receive
  | R_interrupt
  | R_stuck_put_char
  | R_stuck_get_char
  | R_stuck_sleep
  | R_stuck_put_mvar
  | R_stuck_take_mvar

val rule_name : rule -> string
(** The paper's name for the rule, e.g. ["(Block Return)"] for
    {!R_block_return}. *)

val rule_figure : rule -> int
(** Which figure of the paper the rule comes from (4 or 5). *)

val all_rules : rule list

type label =
  | Out_char of char  (** [!c] *)
  | In_char of char  (** [?c] *)
  | Time of int  (** [$d] *)

type actor =
  | Thread_step of Term.tid  (** a rule firing at thread [t]'s redex *)
  | Delivery of int
      (** rules (Receive)/(Interrupt) consuming in-flight exception [k] *)
  | Global  (** rule (Proc GC) *)

type transition = {
  rule : rule;
  actor : actor;
  label : label option;
  next : State.t;
}

type config = {
  fuel : int;  (** fuel for the inner semantics in rules (Eval)/(Raise) *)
  default_mask : Context.mask;
      (** mask of a context with no [block]/[unblock] frames; the paper's
          implementation starts threads unblocked, so the default is
          [Unmasked] (see {!Context.mask_of}) *)
  fork_inherits_mask : bool;
      (** if set, [forkIO] in a masked context wraps the child in [block];
          Figure 5's (Fork) does not inherit (the GHC implementation later
          chose to), so the default is [false] *)
  stuck_io : bool;
      (** enable the unconditional (Stuck PutChar)/(Stuck GetChar)/(Stuck
          Sleep) transitions; disabling them shrinks the state space when a
          corpus program's interruptibility-during-I/O is not under test *)
}

val default_config : config

val enumerate : ?config:config -> State.t -> transition list
(** All transitions the rules of Figures 4 and 5 allow from this state. An
    empty result means the state is terminal: either every thread has
    finished (possibly after (Proc GC)), or the program is deadlocked,
    ill-typed, or purely divergent — {!thread_stall} distinguishes these. *)

type stall =
  | Waiting  (** blocked on an unavailable resource or exhausted input *)
  | Diverging  (** the inner semantics ran out of fuel at this redex *)
  | Ill_typed of string  (** evaluation got stuck; not a well-typed program *)

val thread_stall : config -> State.t -> Term.tid -> stall option
(** Why the given thread contributes no thread-step transition; [None] if
    it can step or has finished. *)

val blocked_reasons :
  ?config:config -> State.t -> (Term.tid * string * Term.mvar_name option) list
(** The wait graph of a terminal state: every thread stalled {!Waiting},
    with the primitive it waits on (["takeMVar"], ["putMVar"],
    ["getChar"]) and the MVar involved, if any — thread order. Feeds the
    deadlock report of [chrun run --stats]. *)
