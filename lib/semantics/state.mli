(** Program states — Figure 2 of the paper.

    A program state is a parallel composition of processes: threads of
    computation [⟨M⟩t] (runnable [○] or stuck [⊗]), finished threads [⊙t],
    empty MVars [⟨⟩m], full MVars [⟨M⟩m], and in-flight asynchronous
    exceptions [⟦t ⇐ e⟧] (Figure 5). Restriction [νx.P] is represented by
    the fresh-name counters: every name in the state is implicitly
    restricted, and structural congruence (Figure 3) is handled by keeping
    the composition in a canonical collection form (associativity and
    commutativity are free) together with {!canonical_key} (α-renaming of
    names, scope extrusion).

    The standard input and output streams record the environment side of
    the labelled transitions [?c] and [!c]. *)

open Ch_lang

type status =
  | Runnable  (** [○] *)
  | Stuck_thread  (** [⊗] — may be interrupted in any context (Fig 5) *)

type finished =
  | Done of Term.term  (** finished via [(Return GC)], value recorded *)
  | Threw of Term.exn_name  (** finished via [(Throw GC)] *)

type thread =
  | Active of Term.term * status
  | Finished of finished  (** [⊙t] *)

type inflight = { target : Term.tid; exn : Term.exn_name }
(** [⟦t ⇐ e⟧]: an exception thrown to [t] but not yet received. *)

type t = {
  threads : (Term.tid * thread) list;  (** in thread-creation order *)
  mvars : (Term.mvar_name * Term.term option) list;
      (** [None] is [⟨⟩m], [Some v] is [⟨v⟩m] *)
  inflight : (int * inflight) list;  (** keyed for transition identity *)
  input : char list;
  output : char list;  (** reversed: most recent first *)
  next_tid : int;
  next_mvar : int;
  next_inflight : int;
  main : Term.tid;
}

val initial : ?input:string -> Term.term -> t
(** [initial m] is the state [⟨m⟩main] with no MVars and the given standard
    input. *)

val main_result : t -> finished option
(** The main thread's outcome, if it has finished. *)

val output_string : t -> string
(** Characters written so far, oldest first. *)

val thread : t -> Term.tid -> thread option
val mvar : t -> Term.mvar_name -> Term.term option option
val set_thread : t -> Term.tid -> thread -> t
val set_mvar : t -> Term.mvar_name -> Term.term option -> t

val canonical_key : t -> string
(** A string determining the state up to structural congruence (Figure 3)
    and α-equivalence: thread and MVar names are renumbered by first
    occurrence, bound variables are printed as de-Bruijn indices, and
    in-flight exceptions whose target has finished are dropped (they are
    inert: no rule can ever consume them). Two states with equal keys are
    behaviourally identical. *)

val pp : Format.formatter -> t -> unit
(** Render the state in the paper's notation, e.g.
    [⟨takeMVar %m0⟩t0/○ | ⟨⟩m0 | ⟦t0 ⇐ KillThread⟧]. *)
