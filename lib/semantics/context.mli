(** Evaluation contexts (paper §6.2 and §6.3).

    The paper's contexts are
    {v
    E ::= [.] | E >>= M | catch E M                 (Figure 4)
    𝔽 ::= [.] | 𝔽 >>= M | catch 𝔽 M
    𝔼 ::= 𝔽 | 𝔽[block 𝔼] | 𝔽[unblock 𝔼]            (split-level, §6.3)
    v}
    We represent a decomposed term as a redex plus a stack of context
    frames, innermost first. Decomposition follows the paper's convention
    that contexts are maximal: it descends through the first argument of
    [>>=] and [catch] and through the bodies of [block] and [unblock], so
    the redex is never itself of the form [block N] (the side condition of
    rule (Receive) holds by construction). *)

open Ch_lang

type frame =
  | F_bind of Term.term  (** [[.] >>= M] *)
  | F_catch of Term.term  (** [catch [.] M] *)
  | F_block  (** [block [.]] *)
  | F_unblock  (** [unblock [.]] *)

type zipper = { frames : frame list;  (** innermost first *) redex : Term.term }

val decompose : Term.term -> zipper
val recompose : zipper -> Term.term

type mask = Masked | Unmasked

val mask_of : default:mask -> frame list -> mask
(** The mask state at the evaluation site: decided by the innermost
    {!F_block} / {!F_unblock} frame. A context with no mask frames has the
    [default] mask; the paper leaves this case open (its (Receive) rule
    requires an enclosing [unblock]), and its implementation section starts
    threads unblocked, so the checker defaults to [Unmasked]. *)

val with_redex : zipper -> Term.term -> Term.term
(** [with_redex z m] recomposes [z] with its redex replaced by [m]. *)
