(** The overload sweep: open-loop load ramps against a server case,
    composed with the kill sweep and with {!Ev.Chaos} resource
    exhaustion.

    Where {!Sweep} asks "does a kill anywhere break the invariants?" and
    {!Io_sweep} asks the same of a transport fault, this driver asks the
    capacity-planning question: {e when offered load exceeds what the
    system can serve, does it degrade or collapse?} A {!case} runs one
    deterministic open-loop ramp — arrivals on the timer wheel at a rate
    scaled by a multiplier, each client recording a lawful outcome — and
    returns a {!tally}. The driver runs the ramp clean at each
    multiplier (1x, 2x, 5x, 10x of nominal by default), then re-runs it
    with resource-exhaustion plans armed (fd budgets, backlog caps, send
    caps) and with kills layered at sampled armed steps.

    Verdicts come in two layers. Inside a run, the case's own
    {!Sweep.require}s hold (every surviving client got a lawful
    outcome, steady state returns once load drains). Across runs, the
    driver gates the curve itself: goodput at the top multiplier must
    stay at least {e half of capacity} (capacity = goodput of the lowest
    clean ramp), and no admitted request may have outstayed the case's
    declared CoDel queue-delay bound. Overload must shed — 503s, brownout,
    dropped mailbox pushes — not wedge or starve.

    Everything is deterministic: arrivals are virtual-clock sleeps,
    multipliers and resource plans travel through domain-local cells
    (set per run, read in the case's first [lift] step), and re-runs are
    farmed to worker domains with results merged in item order, so
    reports are byte-identical for every [jobs] value. *)

type tally = {
  lt_offered : int;  (** arrivals the ramp issued *)
  lt_ok : int;  (** 200s — goodput *)
  lt_shed : int;  (** 503s: bulkhead/queue/deadline/brownout sheds *)
  lt_late : int;  (** 504s and client-side timeouts *)
  lt_transport : int;
      (** transport-level degradation: resets, refusals, dial failures,
          resource exhaustion *)
  lt_max_qdelay : int;
      (** worst bulkhead queue sojourn observed (virtual µs) *)
}
(** What one ramp measured. [lt_ok + lt_shed + lt_late + lt_transport]
    accounts for every client that survived the run. *)

type case
(** A named server program prepared for load sweeping. The body gets the
    per-run {!Ev.Chaos.ctl} (wrap the backend through it so resource
    plans bite) and the ramp multiplier; it must run the ramp, disarm
    both sweeps, check its own invariants, and return the tally. *)

val case :
  ?max_steps:int ->
  ?qdelay_bound:int ->
  string ->
  (Ev.Chaos.ctl -> mult:int -> tally Hio.Io.t) ->
  case
(** Default [max_steps] is [2_000_000] — a 10x ramp runs many clients.
    [qdelay_bound] declares the largest lawful [lt_max_qdelay] (set it
    to the bulkhead's CoDel target plus scheduling slop); the driver
    fails any clean ramp that exceeds it. *)

val case_name : case -> string

val record :
  case ->
  mult:int ->
  resources:Ev.Chaos.resources ->
  Sweep.schedule * tally option
(** One ramp at [mult] with [resources] armed. [None] tally means the
    body never reached its final step (cannot happen for a lawful case).
    @raise Failure if the run does not end in [Value ()] with no blocked
    threads. *)

val run_kill :
  case ->
  Sweep.schedule ->
  mult:int ->
  resources:Ev.Chaos.resources ->
  Plan.t ->
  string option * unit Hio.Runtime.result
(** One ramp with a kill plan layered on top; [None] means all
    invariants held. Exposed for replaying a reported failure. *)

type point = {
  lp_mult : int;
  lp_tally : tally;
  lp_steps : int;
}
(** One clean ramp's result. *)

type load_failure = {
  lf_case : string;
  lf_mult : int;
  lf_resource : string option;
      (** the armed resource plan's name, [None] for a clean ramp *)
  lf_kill : Plan.t;  (** [[]] when no kill was layered *)
  lf_reason : string;
}

type report = {
  lr_case : string;
  lr_capacity : int;  (** goodput of the lowest clean multiplier *)
  lr_points : point list;  (** clean ramps, multiplier order *)
  lr_kill_runs : int;
  lr_resource_ramps : int;
  lr_faulted_steps : int;  (** total steps across phase-2 runs *)
  lr_failures : load_failure list;
}

val sweep :
  ?multipliers:int list ->
  ?kills_per_ramp:int ->
  ?resources:(string * Ev.Chaos.resources) list ->
  ?jobs:int ->
  case ->
  report
(** Run the clean ramps ([multipliers], default [1; 2; 5; 10]), judge
    the goodput and queue-delay gates, then compose: [kills_per_ramp]
    (default 0) kills at that many evenly-sampled armed steps of every
    clean and resource-faulted schedule; [resources] re-records the
    ramp per named resource plan at every multiplier. [jobs] farms
    phase 2 to worker domains; the report is identical for every
    value. *)

val pp_report : Format.formatter -> report -> unit
(** One line per case — capacity, the goodput curve per multiplier, the
    worst queue delay, run counts — plus one block per failure. *)
