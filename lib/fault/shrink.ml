let set_nth plan i inj = List.mapi (fun j x -> if j = i then inj else x) plan

let candidates plan =
  let drops =
    List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) plan) plan
  in
  let moves =
    List.concat
      (List.mapi
         (fun i (inj : Plan.injection) ->
           let at k = set_nth plan i { inj with Plan.at_step = k } in
           if inj.Plan.at_step = 0 then []
           else
             List.sort_uniq compare
               [ at 0; at (inj.Plan.at_step / 2); at (inj.Plan.at_step - 1) ])
         plan)
  in
  drops @ moves

let minimize fails plan =
  if not (fails plan) then plan
  else
    let rec go plan =
      match List.find_opt fails (candidates plan) with
      | Some smaller -> go smaller
      | None -> plan
    in
    go plan
