open Hio
open Hio_std
open Hserver
open Io

let rec yields n =
  if n <= 0 then return () else yield >>= fun () -> yields (n - 1)

(* Wait for a task, discarding its outcome: a killed child must not fail
   the run. [Task.await] re-throws the child's exception, but the same
   [catch] would also swallow a kill aimed at main while it waits here —
   and a main that silently survives its own kill runs the probes
   concurrently with children it never joined, producing phantom
   failures. Disambiguate by polling: if the task is finished the
   exception was its recorded failure (discard it and move on); if not,
   we were the victim — re-throw, so the run ends in [Uncaught
   Kill_thread] and the sweep judges it as a killed-main run. *)
let join t =
  catch
    (ignore_result (Task.await t))
    (fun e ->
      Task.poll t >>= function
      | Some _ -> return ()
      | None -> throw e)

(* --- §5.2 / §7 abstractions --------------------------------------------- *)

let sem_units =
  Sweep.case "sem-units"
    ( Sem.create 2 >>= fun s ->
      let worker = Combinators.repeat 2 (Sem.with_unit s (yields 2)) in
      Task.spawn ~name:"w1" worker >>= fun t1 ->
      Task.spawn ~name:"w2" worker >>= fun t2 ->
      Task.spawn ~name:"w3" worker >>= fun t3 ->
      join t1 >>= fun () ->
      join t2 >>= fun () ->
      join t3 >>= fun () ->
      Sweep.disarm >>= fun () ->
      Sem.available s >>= fun n ->
      Sweep.require "Sem: units conserved" (n = 2) >>= fun () ->
      (* and the semaphore still cycles *)
      Sem.wait s >>= fun () -> Sem.signal s )

let barrier_withdraw =
  Sweep.case "barrier-withdraw"
    ( Barrier.create 2 >>= fun b ->
      (* Alone at a 2-party barrier, the straggler can only leave by
         exception; the baseline provides one kill ([cancel]) and the
         sweep layers a second at every step — including inside the
         withdraw handler. *)
      Task.spawn ~name:"straggler" (ignore_result (Barrier.await b))
      >>= fun t ->
      yields 4 >>= fun () ->
      Task.cancel t >>= fun () ->
      join t >>= fun () ->
      Sweep.disarm >>= fun () ->
      (* the arrival was withdrawn: a fresh pair trips round 0 cleanly *)
      Task.spawn ~name:"p1" (ignore_result (Barrier.await b)) >>= fun p1 ->
      Barrier.await b >>= fun _ -> join p1 )

let chan_conserve =
  Sweep.case "chan-conserve"
    ( Chan.create () >>= fun c ->
      Task.spawn ~name:"producer" (Chan.send_list c [ 1; 2; 3; 4 ])
      >>= fun p ->
      Task.spawn ~name:"consumer"
        (Combinators.repeat 4 (ignore_result (Chan.recv c)))
      >>= fun q ->
      join p >>= fun () ->
      (* a killed producer starves the consumer: top the channel up so
         [join q] terminates (leftovers are harmless, send never blocks) *)
      Chan.send_list c [ 90; 91; 92; 93 ] >>= fun () ->
      join q >>= fun () ->
      Sweep.disarm >>= fun () ->
      (* both cursors must have been restored: a fresh send/recv cycles *)
      Chan.send c 99 >>= fun () ->
      Chan.recv c >>= fun _ -> Chan.try_recv c >>= fun _ -> return () )

let bchan_conserve =
  Sweep.case "bchan-conserve"
    ( Bchan.create 2 >>= fun c ->
      let rec send_all = function
        | [] -> return ()
        | x :: xs -> Bchan.send c x >>= fun () -> send_all xs
      in
      Task.spawn ~name:"producer" (send_all [ 1; 2; 3; 4; 5 ]) >>= fun p ->
      Task.spawn ~name:"consumer"
        (Combinators.repeat 5 (ignore_result (Bchan.recv c)))
      >>= fun q ->
      (* A killed peer starves the survivor, so main must compensate —
         but a blocked sender/receiver legitimately HOLDS its cursor
         MVar, so main may only touch an endpoint once its owner is done
         (then §5.2 restoration guarantees the cursor is free and
         [try_send]/[try_recv] cannot block). Wait for either task to
         finish, then feed or drain the survivor. At most one kill per
         run means at most one side needs help. No timers here, so the
         poll spin cannot stall the virtual clock. *)
      let rec wait_first () =
        Task.poll p >>= fun rp ->
        Task.poll q >>= fun rq ->
        if rp = None && rq = None then yield >>= fun () -> wait_first ()
        else return ()
      in
      let rec feed () =
        Task.poll q >>= function
        | Some _ -> return ()
        | None ->
            Bchan.try_send c 0 >>= fun _ ->
            yield >>= fun () -> feed ()
      in
      let rec drain () =
        Task.poll p >>= function
        | Some _ -> return ()
        | None ->
            Bchan.try_recv c >>= fun _ ->
            yield >>= fun () -> drain ()
      in
      wait_first () >>= fun () ->
      (Task.poll p >>= function Some _ -> feed () | None -> drain ())
      >>= fun () ->
      Sweep.disarm >>= fun () ->
      let rec empty () =
        Bchan.try_recv c >>= function
        | Some _ -> empty ()
        | None -> return ()
      in
      empty () >>= fun () ->
      Bchan.send c 42 >>= fun () ->
      Bchan.recv c >>= fun v ->
      Sweep.require "Bchan: fresh send/recv round-trips" (v = 42) )

let mvar_lock =
  Sweep.case "mvar-lock"
    ( Mvar.new_filled 0 >>= fun m ->
      let worker =
        Combinators.repeat 2 (Mvar.modify m (fun v -> return (v + 1)))
      in
      Task.spawn ~name:"w1" worker >>= fun t1 ->
      Task.spawn ~name:"w2" worker >>= fun t2 ->
      Task.spawn ~name:"w3" worker >>= fun t3 ->
      join t1 >>= fun () ->
      join t2 >>= fun () ->
      join t3 >>= fun () ->
      Sweep.disarm >>= fun () ->
      (* §5.2 safe update: the lock is never lost, whatever was killed *)
      Mvar.try_take m >>= fun v ->
      Sweep.require "Mvar.modify: lock conserved" (v <> None) )

let cleanup_flags =
  Sweep.case "cleanup-flags"
    ( (* fresh flags per run: the sweep re-executes this program once per
         kill point *)
      lift (fun () -> (ref false, ref false, ref 0))
      >>= fun (started, cleaned, balance) ->
      let worker =
        Combinators.finally
          ( lift (fun () -> started := true) >>= fun () ->
            Combinators.bracket_
              (lift (fun () -> incr balance))
              (yields 4)
              (lift (fun () -> decr balance)) )
          (lift (fun () -> cleaned := true))
      in
      Task.spawn ~name:"worker" worker >>= fun t ->
      yields 2 >>= fun () ->
      Task.cancel t >>= fun () ->
      join t >>= fun () ->
      Sweep.disarm >>= fun () ->
      lift (fun () -> (!started, !cleaned, !balance)) >>= fun (s, c, b) ->
      Sweep.require "finally: cleanup ran iff the body started"
        (c || not s)
      >>= fun () ->
      Sweep.require "bracket: acquire/release balanced" (b = 0) )

let std =
  [
    sem_units;
    barrier_withdraw;
    chan_conserve;
    bchan_conserve;
    mvar_lock;
    cleanup_flags;
  ]

(* --- the §11 server ------------------------------------------------------ *)

let server =
  Sweep.case ~max_steps:400_000 "server-requests"
    ( let handler = Server.route [ ("/hello", fun body -> Http.ok ("hi" ^ body)) ] in
      Server.start handler >>= fun server ->
      let client path =
        Server.connect server >>= fun conn ->
        Http.write_request conn
          { Http.meth = "GET"; path; headers = []; body = "" }
        >>= fun () ->
        (* a dead accept loop or killed worker means no reply: the client
           gives up rather than hang *)
        Combinators.timeout 1000 (Http.read_response conn) >>= fun _ ->
        return ()
      in
      Task.spawn ~name:"client1" (client "/hello") >>= fun c1 ->
      Task.spawn ~name:"client2" (client "/hello") >>= fun c2 ->
      join c1 >>= fun () ->
      join c2 >>= fun () ->
      Sweep.disarm >>= fun () ->
      (* probe: one more request (answered or timed out, never wedged),
         then graceful shutdown, after which connections are refused *)
      client "/hello" >>= fun () ->
      Server.shutdown server >>= fun _stats ->
      catch
        (Server.connect server >>= fun _ -> return false)
        (fun e -> return (e = Server.Server_stopped))
      >>= Sweep.require "Server: connect after shutdown is refused" )

let server_targets =
  [ Plan.Acting; Plan.Named "listener"; Plan.Named "conn-worker" ]

(* --- lib/sup: supervision and resilience --------------------------------

   These cases mechanise the tentpole claim of the supervision layer:
   recovery, not just quiescence, survives a kill at every point. Each
   case runs a supervised structure through its normal life in the armed
   window, then disarms and probes that the structure is back in steady
   state — children running (or the whole subtree down if the supervisor
   itself was the victim), breaker closed, bulkhead accounting at zero,
   the server answering 200s again. *)

open Hsup

(* The two generic restart cases share one shape. Two heartbeat children
   increment counters under a supervisor; the probe phase must not guess
   whether the supervisor was the kill victim — a killed supervisor stays
   [alive] until its teardown handler has run, so any immediate check
   races. Instead it calls [Sup.stop], which is idempotent and blocks on
   the supervisor's final outcome: once it returns, the teardown is
   complete in {e every} scenario, and its result says which scenario
   happened — [Ok ()] iff the supervisor processed the [Stop] message,
   i.e. survived the kill (and, mailbox being FIFO, had already restarted
   any killed child). *)
let sup_restart_case name ~strategy ~after_stop =
  Sweep.case name
    ( lift (fun () -> (ref 0, ref 0)) >>= fun (a, b) ->
      let beat r =
        Combinators.forever (lift (fun () -> incr r) >>= fun () -> yield)
      in
      Sup.start ~strategy
        ~intensity:{ Sup.max_restarts = 5; window = 1_000 }
        [ Sup.child "a" (beat a); Sup.child "b" (beat b) ]
      >>= fun sup ->
      yields 30 >>= fun () ->
      Sweep.disarm >>= fun () ->
      (* both children ran: even a child killed at the first armed step
         was restarted in time to beat before the window closed *)
      lift (fun () -> !a > 0 && !b > 0) >>= fun beat_ok ->
      Sweep.require "sup: both children made progress" beat_ok >>= fun () ->
      Sup.stop sup >>= fun r ->
      Sweep.require "sup: only a kill ends the supervisor abnormally"
        (r = Stdlib.Ok () || r = Stdlib.Error Kill_thread)
      >>= fun () ->
      (* stopped or killed, the subtree is down — the heartbeats must be
         provably silent (no stranded child) *)
      lift (fun () -> (!a, !b)) >>= fun (a0, b0) ->
      yields 10 >>= fun () ->
      lift (fun () -> (!a, !b)) >>= fun (a1, b1) ->
      Sweep.require "sup: no stranded child after stop"
        (a1 = a0 && b1 = b0)
      >>= fun () ->
      if r = Stdlib.Ok () then
        (* the supervisor survived: one kill costs at most one restart *)
        Sup.restart_count sup >>= fun rc ->
        Sweep.require "sup: one kill costs at most one restart" (rc <= 1)
        >>= fun () -> after_stop sup
      else return () )

let sup_one_for_one =
  sup_restart_case "sup-one-for-one" ~strategy:Sup.One_for_one
    ~after_stop:(fun _ -> return ())

let sup_all_for_one =
  sup_restart_case "sup-all-for-one" ~strategy:Sup.All_for_one
    ~after_stop:(fun sup ->
      (* collective restart: whichever child was hit, both slots were
         restarted together, so their start counts stay equal *)
      Sup.child_starts sup "a" >>= fun sa ->
      Sup.child_starts sup "b" >>= fun sb ->
      Sweep.require "all-for-one: children start in lockstep" (sa = sb))

let sup_retry_breaker =
  Sweep.case "sup-retry-breaker"
    ( lift (fun () -> ref 0) >>= fun calls ->
      Breaker.create ~failure_threshold:2 ~reset_timeout:50 () >>= fun br ->
      let flaky =
        lift (fun () ->
            incr calls;
            !calls)
        >>= fun n -> if n <= 2 then throw (Failure "flaky") else return ()
      in
      (* baseline walks the whole state machine deterministically:
         closed -> (two failures) open -> fail-fast rejections under
         backoff -> half-open trial after the reset window -> closed *)
      Task.spawn ~name:"caller"
        (Retry.retry ~attempts:6 ~base:5 ~jitter:3 (Breaker.run br flaky))
      >>= fun t ->
      join t >>= fun () ->
      Sweep.disarm >>= fun () ->
      (* whatever the kill hit, the breaker must not be wedged: past the
         reset window a probe call must be admitted (a stuck half-open
         trial would fail-fast it) and close the circuit *)
      sleep 60 >>= fun () ->
      Breaker.run br (return ()) >>= fun () ->
      Breaker.state br >>= fun st ->
      Sweep.require "breaker: probe success closes the circuit"
        (st = Breaker.Closed) )

let sup_bulkhead =
  Sweep.case "sup-bulkhead"
    ( Bulkhead.create ~capacity:2 ~max_waiting:1 () >>= fun bh ->
      lift (fun () -> (ref 0, ref 0)) >>= fun (oks, sheds) ->
      let job =
        Bulkhead.run bh (yields 3) >>= function
        | Ok () -> lift (fun () -> incr oks)
        | Error `Shed -> lift (fun () -> incr sheds)
      in
      Task.spawn ~name:"b1" job >>= fun t1 ->
      Task.spawn ~name:"b2" job >>= fun t2 ->
      Task.spawn ~name:"b3" job >>= fun t3 ->
      Task.spawn ~name:"b4" job >>= fun t4 ->
      join t1 >>= fun () ->
      join t2 >>= fun () ->
      join t3 >>= fun () ->
      join t4 >>= fun () ->
      Sweep.disarm >>= fun () ->
      Bulkhead.entered bh >>= fun n ->
      Sweep.require "bulkhead: occupancy drained to zero" (n = 0)
      >>= fun () ->
      (* full capacity is back: a fresh call is admitted, not shed *)
      Bulkhead.run bh (return ()) >>= fun r ->
      Sweep.require "bulkhead: fresh call admitted" (r = Ok ()) )

(* The tentpole case: graceful degradation of the supervised server.
   Saturating clients (capacity 2 + 1 waiting, 4 clients) exercise the
   shedding path in the baseline; the sweep then demands that after a
   kill anywhere — client, worker, bulkhead, listener, supervisor — every
   accepted request still gets an answer (200, 503 or the client's own
   timeout) and the tree returns to steady state, proven by probe
   requests that must be served with 200. *)
let sup_server_config =
  {
    Server.default_config with
    max_concurrent = 2;
    max_waiting = 1;
    restart_intensity = { Sup.max_restarts = 4; window = 10_000 };
  }

let sup_server =
  Sweep.case ~max_steps:400_000 "sup-server"
    ( let handler =
        Server.route [ ("/hello", fun body -> Http.ok ("hi" ^ body)) ]
      in
      Server.start ~config:sup_server_config handler >>= fun server ->
      lift (fun () -> Array.make 4 None) >>= fun outcomes ->
      let client i =
        Server.connect server >>= fun conn ->
        Http.write_request conn
          { Http.meth = "GET"; path = "/hello"; headers = []; body = "" }
        >>= fun () ->
        Combinators.timeout 1_000 (Http.read_response conn) >>= fun r ->
        lift (fun () ->
            outcomes.(i) <-
              Some
                (match r with
                | None -> `Timed_out
                | Some resp -> `Status resp.Http.status))
      in
      Task.spawn ~name:"client0" (client 0) >>= fun c0 ->
      Task.spawn ~name:"client1" (client 1) >>= fun c1 ->
      Task.spawn ~name:"client2" (client 2) >>= fun c2 ->
      Task.spawn ~name:"client3" (client 3) >>= fun c3 ->
      join c0 >>= fun () ->
      join c1 >>= fun () ->
      join c2 >>= fun () ->
      join c3 >>= fun () ->
      Sweep.disarm >>= fun () ->
      (* graceful degradation: every client that survived recorded an
         answer, and only answers the contract allows *)
      let check t i =
        Task.poll t >>= fun st ->
        lift (fun () -> outcomes.(i)) >>= fun o ->
        match st with
        | Some (Stdlib.Ok ()) ->
            Sweep.require "sup-server: accepted request answered"
              (match o with
              | Some (`Status (200 | 503 | 504)) | Some `Timed_out -> true
              | _ -> false)
        | _ -> return () (* the client itself was the kill victim *)
      in
      check c0 0 >>= fun () ->
      check c1 1 >>= fun () ->
      check c2 2 >>= fun () ->
      check c3 3 >>= fun () ->
      (* steady state: the tree answers 200s again — twice, so the first
         probe wasn't a fluke of a half-restarted tree *)
      let probe srv =
        Server.connect srv >>= fun conn ->
        Http.write_request conn
          { Http.meth = "GET"; path = "/hello"; headers = []; body = "" }
        >>= fun () ->
        Combinators.timeout 1_000 (Http.read_response conn) >>= fun r ->
        return
          (match r with Some resp -> resp.Http.status = 200 | None -> false)
      in
      let sup_alive () =
        match Server.supervisor server with
        | None -> return true
        | Some sup -> Sup.alive sup
      in
      (* the supervisor itself may be the victim; a process manager would
         restart the whole tree — model that with a fresh server and
         require service is restored *)
      let fresh_tree () =
        Server.start ~config:sup_server_config handler >>= fun fresh ->
        probe fresh >>= fun ok ->
        Sweep.require "sup-server: a fresh tree restores service" ok
        >>= fun () ->
        Server.shutdown fresh >>= fun _ -> return ()
      in
      sup_alive () >>= fun alive ->
      (if alive then
         (* [alive] can be a lie: a killed supervisor keeps the flag until
            its teardown handler has run. The probe's own timeout gives
            that teardown ample virtual time, so a failed probe with the
            supervisor now dead is the kill surfacing, not a violation —
            only a failed probe under a supervisor still alive is. *)
         probe server >>= fun ok1 ->
         if ok1 then
           probe server >>= fun ok2 ->
           Sweep.require "sup-server: steady state persists" ok2
         else
           sup_alive () >>= fun still_alive ->
           Sweep.require "sup-server: steady state answers 200"
             (not still_alive)
           >>= fun () -> fresh_tree ()
       else fresh_tree ())
      >>= fun () ->
      Server.shutdown server >>= fun _stats ->
      catch
        (Server.connect server >>= fun _ -> return false)
        (fun e -> return (e = Server.Server_stopped))
      >>= Sweep.require "sup-server: connect after shutdown is refused" )

let sup_server_targets =
  [
    Plan.Acting;
    Plan.Named "supervisor";
    Plan.Named "listener";
    Plan.Named "conn-worker";
  ]

let sup_sweeps =
  [
    (sup_one_for_one, Plan.Acting);
    (sup_one_for_one, Plan.Named "supervisor");
    (sup_one_for_one, Plan.Named "a");
    (sup_all_for_one, Plan.Acting);
    (sup_retry_breaker, Plan.Acting);
    (sup_bulkhead, Plan.Acting);
  ]
  @ List.map (fun t -> (sup_server, t)) sup_server_targets

(* --- the actor layer ----------------------------------------------------

   Links are throwTo, monitors are messages, and the exit protocol runs
   under uninterruptibly — so the claims to sweep are delivery claims:
   a Down arrives at most once (exactly once when watcher and monitor
   both survived), a linked parent always learns of its child's death,
   per-sender mailbox order holds whatever the schedule, and the
   sharded server degrades instead of wedging when any layer of its
   tree is the victim. *)

module Actor = Hactor.Actor
module Router = Hactor.Router

let actor_link =
  Sweep.case "actor-link"
    ( lift (fun () -> (ref 0, ref 0, ref false, ref None))
      >>= fun (downs, exits, armed, child_ref) ->
      (* the watcher only counts Down messages *)
      Actor.spawn ~name:"watcher" (fun self ->
          Combinators.forever
            ( Actor.receive self (fun (`Down (_ : Actor.down)) -> Some ())
              >>= fun () -> lift (fun () -> incr downs) ))
      >>= fun watcher ->
      (* the parent spawns a linked child that crashes on demand,
         monitors it on behalf of the watcher, then waits for the link
         to fire *)
      Actor.spawn ~name:"parent" (fun self ->
          Actor.spawn_link ~parent:self ~name:"child" (fun cself ->
              Actor.receive cself (fun `Boom -> Some ()) >>= fun () ->
              throw (Failure "boom"))
          >>= fun child ->
          lift (fun () -> child_ref := Some child) >>= fun () ->
          Actor.monitor ~watcher ~inject:(fun d -> `Down d) child
          >>= fun _mref ->
          lift (fun () -> armed := true) >>= fun () ->
          Actor.send child `Boom >>= fun () ->
          catch
            (Actor.receive self (fun `Boom -> (None : unit option)))
            (function
              | Actor.Exit_signal _ -> lift (fun () -> incr exits)
              | e -> throw e))
      >>= fun parent ->
      Actor.await parent >>= fun _ ->
      (* settle the child whichever way the kill went: it always dies
         abnormally (crash, link cascade from the parent, or this kill) *)
      lift (fun () -> !child_ref) >>= (function
        | Some child ->
            Actor.kill child >>= fun () ->
            Actor.await child >>= fun _ -> return ()
        | None -> return ())
      >>= fun () ->
      (* give the watcher thread time to drain its mailbox *)
      yields 10 >>= fun () ->
      Sweep.disarm >>= fun () ->
      Actor.alive watcher >>= fun watcher_alive ->
      lift (fun () -> (!downs, !armed)) >>= fun (d, a) ->
      Sweep.require "actor: Down delivered at most once" (d <= 1)
      >>= fun () ->
      (if watcher_alive && a then
         (* monitor armed and the watcher never died: the watched
            actor's death must deliver exactly one Down *)
         Sweep.require "actor: Down delivered exactly once" (d = 1)
       else return ())
      >>= fun () ->
      Actor.stop watcher >>= fun _ -> return () )

let actor_call =
  Sweep.case "actor-call"
    ( Actor.spawn ~name:"counter" (fun self ->
          lift (fun () -> ref 0) >>= fun state ->
          Combinators.forever
            ( Actor.receive self (fun m -> Some m) >>= function
              | `Add (n, r) ->
                  lift (fun () -> state := !state + n) >>= fun () ->
                  Actor.reply r ()
              | `Get r -> lift (fun () -> !state) >>= fun v -> Actor.reply r v ))
      >>= fun counter ->
      (* two clients race calls; a dead server must fail them fast
         (monitor), not leave them waiting out the timeout *)
      let client =
        Combinators.repeat 2
          (catch
             (Actor.call ~timeout:1_000 counter (fun r -> `Add (1, r)))
             (function
               | Actor.Exit_signal _ | Actor.Call_timeout -> return ()
               | e -> throw e))
      in
      Task.spawn ~name:"caller1" client >>= fun t1 ->
      Task.spawn ~name:"caller2" client >>= fun t2 ->
      join t1 >>= fun () ->
      join t2 >>= fun () ->
      Sweep.disarm >>= fun () ->
      Actor.alive counter >>= fun up ->
      (if up then
         (* [up] can be a lie: a kill posted while the masked server was
            mid-message is delivered at its next receive wait — i.e.
            during this very probe, which then fails fast with the
            kill's Exit_signal. That is the monitor doing its job, not
            a violation; any other reason is. *)
         catch
           ( Actor.call ~timeout:1_000 counter (fun r -> `Get r)
             >>= fun v ->
             Sweep.require "actor: counter bounded by completed calls"
               (v >= 0 && v <= 4)
             >>= fun () ->
             Actor.stop counter >>= fun r ->
             Sweep.require "actor: graceful stop acknowledged"
               (r = Stdlib.Ok ()) )
           (function
             | Actor.Exit_signal { reason = Kill_thread; _ } -> return ()
             | e -> throw e)
       else return ()) )

let actor_ring =
  Sweep.case "actor-ring"
    ( let n = 4 and laps = 2 in
      let limit = n * laps in
      lift (fun () -> (Array.make n [], ref false)) >>= fun (seen, completed) ->
      Mvar.new_empty >>= fun done_mv ->
      let rec mk i acc =
        if i < 0 then return acc
        else
          Actor.create ~name:(Printf.sprintf "ring-%d" i) () >>= fun a ->
          mk (i - 1) (a :: acc)
      in
      mk (n - 1) [] >>= fun ring_list ->
      let ring = Array.of_list ring_list in
      (* each member records the hop count it saw and forwards; the
         last hop fills done_mv *)
      let member i self =
        Combinators.forever
          ( Actor.receive self (fun (`Token k) -> Some k) >>= fun k ->
            lift (fun () -> seen.(i) <- k :: seen.(i)) >>= fun () ->
            if k + 1 >= limit then
              lift (fun () -> completed := true) >>= fun () ->
              Mvar.try_put done_mv () >>= fun _ -> return ()
            else Actor.send ring.((i + 1) mod n) (`Token (k + 1)) )
      in
      let rec go i =
        if i >= n then return ()
        else Actor.fork_body ring.(i) (member i) >>= fun () -> go (i + 1)
      in
      go 0 >>= fun () ->
      Actor.send ring.(0) (`Token 0) >>= fun () ->
      (* a killed member drops the token: bound the wait. The timeout
         combinator forks its payload as a child thread and, per its §7
         contract, rethrows the child's exception here — so an injected
         kill whose acting thread is that child surfaces as Kill_thread
         in main. Absorb it and wait again (injections are one-shot;
         the ring itself was untouched and the token still circulates). *)
      let rec bounded_wait () =
        catch
          (Combinators.timeout 2_000 (Mvar.read done_mv) >>= fun _ ->
           return ())
          (function Kill_thread -> bounded_wait () | e -> throw e)
      in
      bounded_wait () >>= fun () ->
      let rec all_alive i acc =
        if i >= n then return acc
        else Actor.alive ring.(i) >>= fun a -> all_alive (i + 1) (acc && a)
      in
      all_alive 0 true >>= fun alive ->
      lift (fun () -> !completed) >>= fun ok ->
      (* tear the ring down (members loop forever) *)
      let rec kill_all i =
        if i >= n then return ()
        else
          Actor.kill ring.(i) >>= fun () ->
          Actor.await ring.(i) >>= fun _ -> kill_all (i + 1)
      in
      kill_all 0 >>= fun () ->
      Sweep.disarm >>= fun () ->
      Sweep.require "ring: token completes its laps when nobody was killed"
        ((not alive) || ok)
      >>= fun () ->
      (* per-member FIFO: the single-predecessor hop numbers must be
         strictly increasing however the schedule interleaved *)
      lift (fun () ->
          Array.for_all
            (fun l ->
              let rec increasing = function
                | a :: (b :: _ as rest) -> a < b && increasing rest
                | _ -> true
              in
              increasing (List.rev l))
            seen)
      >>= Sweep.require "ring: per-member hop order is FIFO" )

(* The sharded-server tentpole, same shape as sup-server: keyed
   clients (one per shard — the case is swept unsampled over seven
   targets, so it is kept deliberately small), allowed-answers
   contract, double probe, fresh tree if the root died, refused
   connect after shutdown — but the kill targets now include the
   router actor, a shard subtree, the shard's serving actor and its
   workers. *)
let actor_shard_config =
  {
    Server.default_config with
    max_concurrent = 2;
    max_waiting = 1;
    restart_intensity = { Sup.max_restarts = 6; window = 10_000 };
  }

let actor_shard =
  Sweep.case ~max_steps:400_000 "actor-shard"
    ( let handler =
        Server.route [ ("/hello", fun body -> Http.ok ("hi" ^ body)) ]
      in
      Shard.start ~config:actor_shard_config ~shards:2 handler
      >>= fun server ->
      lift (fun () -> Array.make 2 None) >>= fun outcomes ->
      let client i =
        Shard.connect ~key:(Printf.sprintf "key-%d" i) server >>= fun conn ->
        Http.write_request conn
          { Http.meth = "GET"; path = "/hello"; headers = []; body = "" }
        >>= fun () ->
        Combinators.timeout 1_000 (Http.read_response conn) >>= fun r ->
        lift (fun () ->
            outcomes.(i) <-
              Some
                (match r with
                | None -> `Timed_out
                | Some resp -> `Status resp.Http.status))
      in
      Task.spawn ~name:"client0" (client 0) >>= fun c0 ->
      Task.spawn ~name:"client1" (client 1) >>= fun c1 ->
      join c0 >>= fun () ->
      join c1 >>= fun () ->
      Sweep.disarm >>= fun () ->
      let check t i =
        Task.poll t >>= fun st ->
        lift (fun () -> outcomes.(i)) >>= fun o ->
        match st with
        | Some (Stdlib.Ok ()) ->
            Sweep.require "actor-shard: accepted request answered"
              (match o with
              | Some (`Status (200 | 503 | 504)) | Some `Timed_out -> true
              | _ -> false)
        | _ -> return () (* the client itself was the kill victim *)
      in
      check c0 0 >>= fun () ->
      check c1 1 >>= fun () ->
      let probe srv key =
        Shard.connect ~key srv >>= fun conn ->
        Http.write_request conn
          { Http.meth = "GET"; path = "/hello"; headers = []; body = "" }
        >>= fun () ->
        Combinators.timeout 1_000 (Http.read_response conn) >>= fun r ->
        return
          (match r with Some resp -> resp.Http.status = 200 | None -> false)
      in
      let root_alive () = Sup.alive (Shard.supervisor server) in
      (* a dead root: a process manager would restart the tree — model
         that and require service restored *)
      let fresh_tree () =
        Shard.start ~config:actor_shard_config ~shards:2 handler
        >>= fun fresh ->
        probe fresh "fresh-a" >>= fun ok ->
        Sweep.require "actor-shard: a fresh tree restores service" ok
        >>= fun () ->
        Shard.shutdown fresh >>= fun _ -> return ()
      in
      root_alive () >>= fun alive ->
      (if alive then
         (* both shards must answer: probe a key per shard. As with
            sup-server, [alive] can lag a killed root's teardown — a
            failed probe is only a violation if the root is still alive
            afterwards. *)
         probe server "key-0" >>= fun ok1 ->
         probe server "key-1" >>= fun ok2 ->
         if ok1 && ok2 then
           probe server "key-0" >>= fun ok3 ->
           Sweep.require "actor-shard: steady state persists" ok3
         else
           root_alive () >>= fun still_alive ->
           Sweep.require "actor-shard: steady state answers 200"
             (not still_alive)
           >>= fun () -> fresh_tree ()
       else fresh_tree ())
      >>= fun () ->
      Shard.shutdown server >>= fun _stats ->
      catch
        (Shard.connect server >>= fun _ -> return false)
        (fun e -> return (e = Server.Server_stopped))
      >>= Sweep.require "actor-shard: connect after shutdown is refused" )

let actor_shard_targets =
  [
    Plan.Acting;
    Plan.Named "router";
    Plan.Named "shard-0";
    Plan.Named "shard-sup-0";
    Plan.Named "shard-serve";
    Plan.Named "conn-worker";
    Plan.Named "shard-root";
  ]

let actor_sweeps =
  [
    (actor_link, Plan.Acting);
    (actor_link, Plan.Named "watcher");
    (actor_link, Plan.Named "parent");
    (actor_link, Plan.Named "child");
    (actor_call, Plan.Acting);
    (actor_call, Plan.Named "counter");
    (actor_ring, Plan.Acting);
    (actor_ring, Plan.Named "ring-1");
  ]
  @ List.map (fun t -> (actor_shard, t)) actor_shard_targets

(* --- a deliberately broken abstraction, to test the harness ------------- *)

let naive_lock =
  Sweep.case ~max_steps:5_000 "naive-lock"
    ( Mvar.new_filled () >>= fun lock ->
      (* BUG (on purpose): bare take/put with no mask and no restore — a
         kill between them loses the lock (§5.2 is exactly about this) *)
      let worker =
        Mvar.take lock >>= fun () -> yields 2 >>= fun () -> Mvar.put lock ()
      in
      Task.spawn ~name:"n1" worker >>= fun t1 ->
      Task.spawn ~name:"n2" worker >>= fun t2 ->
      join t1 >>= fun () ->
      join t2 >>= fun () ->
      Sweep.disarm >>= fun () ->
      Mvar.take lock (* wedges if a kill landed while the lock was held *) )
