open Hio
open Hio_std
open Hserver
open Io

let rec yields n =
  if n <= 0 then return () else yield >>= fun () -> yields (n - 1)

(* Wait for a task, discarding its outcome: a killed child must not fail
   the run. [Task.await] re-throws the child's exception, but the same
   [catch] would also swallow a kill aimed at main while it waits here —
   and a main that silently survives its own kill runs the probes
   concurrently with children it never joined, producing phantom
   failures. Disambiguate by polling: if the task is finished the
   exception was its recorded failure (discard it and move on); if not,
   we were the victim — re-throw, so the run ends in [Uncaught
   Kill_thread] and the sweep judges it as a killed-main run. *)
let join t =
  catch
    (ignore_result (Task.await t))
    (fun e ->
      Task.poll t >>= function
      | Some _ -> return ()
      | None -> throw e)

(* --- §5.2 / §7 abstractions --------------------------------------------- *)

let sem_units =
  Sweep.case "sem-units"
    ( Sem.create 2 >>= fun s ->
      let worker = Combinators.repeat 2 (Sem.with_unit s (yields 2)) in
      Task.spawn ~name:"w1" worker >>= fun t1 ->
      Task.spawn ~name:"w2" worker >>= fun t2 ->
      Task.spawn ~name:"w3" worker >>= fun t3 ->
      join t1 >>= fun () ->
      join t2 >>= fun () ->
      join t3 >>= fun () ->
      Sweep.disarm >>= fun () ->
      Sem.available s >>= fun n ->
      Sweep.require "Sem: units conserved" (n = 2) >>= fun () ->
      (* and the semaphore still cycles *)
      Sem.wait s >>= fun () -> Sem.signal s )

let barrier_withdraw =
  Sweep.case "barrier-withdraw"
    ( Barrier.create 2 >>= fun b ->
      (* Alone at a 2-party barrier, the straggler can only leave by
         exception; the baseline provides one kill ([cancel]) and the
         sweep layers a second at every step — including inside the
         withdraw handler. *)
      Task.spawn ~name:"straggler" (ignore_result (Barrier.await b))
      >>= fun t ->
      yields 4 >>= fun () ->
      Task.cancel t >>= fun () ->
      join t >>= fun () ->
      Sweep.disarm >>= fun () ->
      (* the arrival was withdrawn: a fresh pair trips round 0 cleanly *)
      Task.spawn ~name:"p1" (ignore_result (Barrier.await b)) >>= fun p1 ->
      Barrier.await b >>= fun _ -> join p1 )

let chan_conserve =
  Sweep.case "chan-conserve"
    ( Chan.create () >>= fun c ->
      Task.spawn ~name:"producer" (Chan.send_list c [ 1; 2; 3; 4 ])
      >>= fun p ->
      Task.spawn ~name:"consumer"
        (Combinators.repeat 4 (ignore_result (Chan.recv c)))
      >>= fun q ->
      join p >>= fun () ->
      (* a killed producer starves the consumer: top the channel up so
         [join q] terminates (leftovers are harmless, send never blocks) *)
      Chan.send_list c [ 90; 91; 92; 93 ] >>= fun () ->
      join q >>= fun () ->
      Sweep.disarm >>= fun () ->
      (* both cursors must have been restored: a fresh send/recv cycles *)
      Chan.send c 99 >>= fun () ->
      Chan.recv c >>= fun _ -> Chan.try_recv c >>= fun _ -> return () )

let bchan_conserve =
  Sweep.case "bchan-conserve"
    ( Bchan.create 2 >>= fun c ->
      let rec send_all = function
        | [] -> return ()
        | x :: xs -> Bchan.send c x >>= fun () -> send_all xs
      in
      Task.spawn ~name:"producer" (send_all [ 1; 2; 3; 4; 5 ]) >>= fun p ->
      Task.spawn ~name:"consumer"
        (Combinators.repeat 5 (ignore_result (Bchan.recv c)))
      >>= fun q ->
      (* A killed peer starves the survivor, so main must compensate —
         but a blocked sender/receiver legitimately HOLDS its cursor
         MVar, so main may only touch an endpoint once its owner is done
         (then §5.2 restoration guarantees the cursor is free and
         [try_send]/[try_recv] cannot block). Wait for either task to
         finish, then feed or drain the survivor. At most one kill per
         run means at most one side needs help. No timers here, so the
         poll spin cannot stall the virtual clock. *)
      let rec wait_first () =
        Task.poll p >>= fun rp ->
        Task.poll q >>= fun rq ->
        if rp = None && rq = None then yield >>= fun () -> wait_first ()
        else return ()
      in
      let rec feed () =
        Task.poll q >>= function
        | Some _ -> return ()
        | None ->
            Bchan.try_send c 0 >>= fun _ ->
            yield >>= fun () -> feed ()
      in
      let rec drain () =
        Task.poll p >>= function
        | Some _ -> return ()
        | None ->
            Bchan.try_recv c >>= fun _ ->
            yield >>= fun () -> drain ()
      in
      wait_first () >>= fun () ->
      (Task.poll p >>= function Some _ -> feed () | None -> drain ())
      >>= fun () ->
      Sweep.disarm >>= fun () ->
      let rec empty () =
        Bchan.try_recv c >>= function
        | Some _ -> empty ()
        | None -> return ()
      in
      empty () >>= fun () ->
      Bchan.send c 42 >>= fun () ->
      Bchan.recv c >>= fun v ->
      Sweep.require "Bchan: fresh send/recv round-trips" (v = 42) )

let mvar_lock =
  Sweep.case "mvar-lock"
    ( Mvar.new_filled 0 >>= fun m ->
      let worker =
        Combinators.repeat 2 (Mvar.modify m (fun v -> return (v + 1)))
      in
      Task.spawn ~name:"w1" worker >>= fun t1 ->
      Task.spawn ~name:"w2" worker >>= fun t2 ->
      Task.spawn ~name:"w3" worker >>= fun t3 ->
      join t1 >>= fun () ->
      join t2 >>= fun () ->
      join t3 >>= fun () ->
      Sweep.disarm >>= fun () ->
      (* §5.2 safe update: the lock is never lost, whatever was killed *)
      Mvar.try_take m >>= fun v ->
      Sweep.require "Mvar.modify: lock conserved" (v <> None) )

let cleanup_flags =
  Sweep.case "cleanup-flags"
    ( (* fresh flags per run: the sweep re-executes this program once per
         kill point *)
      lift (fun () -> (ref false, ref false, ref 0))
      >>= fun (started, cleaned, balance) ->
      let worker =
        Combinators.finally
          ( lift (fun () -> started := true) >>= fun () ->
            Combinators.bracket_
              (lift (fun () -> incr balance))
              (yields 4)
              (lift (fun () -> decr balance)) )
          (lift (fun () -> cleaned := true))
      in
      Task.spawn ~name:"worker" worker >>= fun t ->
      yields 2 >>= fun () ->
      Task.cancel t >>= fun () ->
      join t >>= fun () ->
      Sweep.disarm >>= fun () ->
      lift (fun () -> (!started, !cleaned, !balance)) >>= fun (s, c, b) ->
      Sweep.require "finally: cleanup ran iff the body started"
        (c || not s)
      >>= fun () ->
      Sweep.require "bracket: acquire/release balanced" (b = 0) )

let std =
  [
    sem_units;
    barrier_withdraw;
    chan_conserve;
    bchan_conserve;
    mvar_lock;
    cleanup_flags;
  ]

(* --- the §11 server ------------------------------------------------------ *)

let server =
  Sweep.case ~max_steps:400_000 "server-requests"
    ( let handler = Server.route [ ("/hello", fun body -> Http.ok ("hi" ^ body)) ] in
      Server.start handler >>= fun server ->
      let client path =
        Server.connect server >>= fun conn ->
        Http.write_request conn
          { Http.meth = "GET"; path; headers = []; body = "" }
        >>= fun () ->
        (* a dead accept loop or killed worker means no reply: the client
           gives up rather than hang *)
        Combinators.timeout 1000 (Http.read_response conn) >>= fun _ ->
        return ()
      in
      Task.spawn ~name:"client1" (client "/hello") >>= fun c1 ->
      Task.spawn ~name:"client2" (client "/hello") >>= fun c2 ->
      join c1 >>= fun () ->
      join c2 >>= fun () ->
      Sweep.disarm >>= fun () ->
      (* probe: one more request (answered or timed out, never wedged),
         then graceful shutdown, after which connections are refused *)
      client "/hello" >>= fun () ->
      Server.shutdown server >>= fun _stats ->
      catch
        (Server.connect server >>= fun _ -> return false)
        (fun e -> return (e = Server.Server_stopped))
      >>= Sweep.require "Server: connect after shutdown is refused" )

let server_targets =
  [ Plan.Acting; Plan.Named "listener"; Plan.Named "conn-worker" ]

(* --- a deliberately broken abstraction, to test the harness ------------- *)

let naive_lock =
  Sweep.case ~max_steps:5_000 "naive-lock"
    ( Mvar.new_filled () >>= fun lock ->
      (* BUG (on purpose): bare take/put with no mask and no restore — a
         kill between them loses the lock (§5.2 is exactly about this) *)
      let worker =
        Mvar.take lock >>= fun () -> yields 2 >>= fun () -> Mvar.put lock ()
      in
      Task.spawn ~name:"n1" worker >>= fun t1 ->
      Task.spawn ~name:"n2" worker >>= fun t2 ->
      join t1 >>= fun () ->
      join t2 >>= fun () ->
      Sweep.disarm >>= fun () ->
      Mvar.take lock (* wedges if a kill landed while the lock was held *) )
