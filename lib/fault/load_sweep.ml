open Hio

(* Per-domain plumbing, exactly [Io_sweep]'s pattern: the driver picks
   the ramp multiplier and the resource plan per run, the case builds
   its chaos ctl fresh inside the run and hands its tally back through
   a domain-local cell — race-free under [Par.map] because each worker
   domain runs its evaluations sequentially. *)

type tally = {
  lt_offered : int;  (** arrivals the ramp issued *)
  lt_ok : int;  (** 200s — goodput *)
  lt_shed : int;  (** 503s: bulkhead/queue/deadline/brownout sheds *)
  lt_late : int;  (** 504s and client-side timeouts *)
  lt_transport : int;  (** transport-level degradation (resets, refusals,
                           dial failures, resource exhaustion) *)
  lt_max_qdelay : int;  (** worst bulkhead queue sojourn observed, µs *)
}

let mult_key = Domain.DLS.new_key (fun () -> ref 1)

let resources_key =
  Domain.DLS.new_key (fun () -> ref Ev.Chaos.no_resources)

let tally_key = Domain.DLS.new_key (fun () -> ref (None : tally option))

type case = {
  lc_name : string;
  lc_max_steps : int;
  lc_qdelay_bound : int option;
  lc_body : Ev.Chaos.ctl -> mult:int -> tally Io.t;
}

let case ?(max_steps = 2_000_000) ?qdelay_bound name body =
  {
    lc_name = name;
    lc_max_steps = max_steps;
    lc_qdelay_bound = qdelay_bound;
    lc_body = body;
  }

let case_name c = c.lc_name

(* The [Sweep.case] view: one [lift] step reads the domain's multiplier
   and resource plan and builds the ctl; the body runs the ramp, checks
   its own invariants, and returns the tally, parked for the driver. *)
let kill_case c =
  Sweep.case ~max_steps:c.lc_max_steps c.lc_name
    (Io.bind
       (Io.lift (fun () ->
            Domain.DLS.get tally_key := None;
            let resources = !(Domain.DLS.get resources_key) in
            (Ev.Chaos.create ~resources [], !(Domain.DLS.get mult_key))))
       (fun (ctl, mult) ->
         Io.bind (c.lc_body ctl ~mult) (fun tally ->
             Io.lift (fun () -> Domain.DLS.get tally_key := Some tally))))

let record c ~mult ~resources =
  Domain.DLS.get mult_key := mult;
  Domain.DLS.get resources_key := resources;
  let schedule = Sweep.record (kill_case c) in
  (schedule, !(Domain.DLS.get tally_key))

let run_kill c schedule ~mult ~resources plan =
  Domain.DLS.get mult_key := mult;
  Domain.DLS.get resources_key := resources;
  Sweep.run_plan (kill_case c) schedule plan

type point = {
  lp_mult : int;
  lp_tally : tally;
  lp_steps : int;
}

type load_failure = {
  lf_case : string;
  lf_mult : int;
  lf_resource : string option;
  lf_kill : Plan.t;
  lf_reason : string;
}

type report = {
  lr_case : string;
  lr_capacity : int;
  lr_points : point list;
  lr_kill_runs : int;
  lr_resource_ramps : int;
  lr_faulted_steps : int;
  lr_failures : load_failure list;
}

(* Down-sample to at most [n], evenly spaced, keeping first and last —
   the kill sweep's sampling policy. *)
let sample n l =
  let arr = Array.of_list l in
  let len = Array.length arr in
  if len <= n then l
  else List.init n (fun i -> arr.(if n = 1 then 0 else i * (len - 1) / (n - 1)))

let armed_steps schedule =
  List.sort_uniq compare (List.map fst (Array.to_list schedule.Sweep.s_armed))

(* What [Par.map] farms out after the clean ramps are in: kill runs over
   a clean ramp's schedule, or a whole resource-faulted ramp (its own
   fresh recording) with kills layered on its armed steps. *)
type item =
  | Clean_kills of int * Sweep.schedule
  | Faulted of int * string * Ev.Chaos.resources

let sweep ?(multipliers = [ 1; 2; 5; 10 ]) ?(kills_per_ramp = 0)
    ?(resources = []) ?(jobs = 1) c =
  (* Phase 1 — one clean open-loop ramp per multiplier, sequentially on
     the driver domain: these runs define capacity and the goodput
     curve, so their tallies go into the report verbatim. *)
  let clean =
    List.map
      (fun m ->
        match record c ~mult:m ~resources:Ev.Chaos.no_resources with
        | schedule, Some t -> (m, Ok (schedule, t))
        | _, None -> (m, Error "ramp finished without recording a tally")
        | exception Failure msg -> (m, Error msg))
      multipliers
  in
  let failures = ref [] in
  let fail ~mult ?resource ?(kill = []) reason =
    failures :=
      {
        lf_case = c.lc_name;
        lf_mult = mult;
        lf_resource = resource;
        lf_kill = kill;
        lf_reason = reason;
      }
      :: !failures
  in
  let points =
    List.filter_map
      (function
        | m, Ok (schedule, t) ->
            Some { lp_mult = m; lp_tally = t; lp_steps = schedule.Sweep.s_steps }
        | m, Error msg ->
            fail ~mult:m msg;
            None)
      clean
  in
  (* Capacity: goodput of the lowest clean multiplier (1x by default). *)
  let capacity =
    match points with [] -> 0 | p :: _ -> p.lp_tally.lt_ok
  in
  (* Driver-level gates, judged across runs (no single run can see them):
     goodput at the top of the ramp must hold at least half of capacity
     — overload must degrade service, not collapse it — and no admitted
     request may have sat in a bulkhead queue past the declared CoDel
     bound. *)
  (match List.rev points with
  | top :: _ when List.length points > 1 ->
      if 2 * top.lp_tally.lt_ok < capacity then
        fail ~mult:top.lp_mult
          (Printf.sprintf
             "goodput collapsed under overload: %d ok at %dx < half of \
              capacity %d"
             top.lp_tally.lt_ok top.lp_mult capacity)
  | _ -> ());
  (match c.lc_qdelay_bound with
  | None -> ()
  | Some bound ->
      List.iter
        (fun p ->
          if p.lp_tally.lt_max_qdelay > bound then
            fail ~mult:p.lp_mult
              (Printf.sprintf
                 "queue delay %d exceeds the CoDel bound %d"
                 p.lp_tally.lt_max_qdelay bound))
        points);
  (* Phase 2 — kill and resource-exhaustion composition, farmed to
     worker domains; the merge folds position-indexed results in item
     order so the report is identical for every [jobs] value. *)
  let items =
    List.concat_map
      (fun (m, r) ->
        match r with
        | Error _ -> []
        | Ok (schedule, _) ->
            (if kills_per_ramp > 0 then [ Clean_kills (m, schedule) ] else [])
            @ List.map (fun (name, res) -> Faulted (m, name, res)) resources)
      clean
  in
  let eval item =
    let steps = ref 0 and kill_runs = ref 0 and ramps = ref 0 in
    let fails = ref [] in
    let fail ~mult ?resource ?(kill = []) reason =
      fails :=
        {
          lf_case = c.lc_name;
          lf_mult = mult;
          lf_resource = resource;
          lf_kill = kill;
          lf_reason = reason;
        }
        :: !fails
    in
    let kills ~mult ?resource ~res schedule =
      List.iter
        (fun step ->
          incr kill_runs;
          let plan = [ Plan.kill step ] in
          let v, r = run_kill c schedule ~mult ~resources:res plan in
          steps := !steps + r.Runtime.steps;
          match v with
          | None -> ()
          | Some reason -> fail ~mult ?resource ~kill:plan reason)
        (sample kills_per_ramp (armed_steps schedule))
    in
    (match item with
    | Clean_kills (m, schedule) ->
        kills ~mult:m ~res:Ev.Chaos.no_resources schedule
    | Faulted (m, rname, res) -> (
        incr ramps;
        match record c ~mult:m ~resources:res with
        | exception Failure msg -> fail ~mult:m ~resource:rname msg
        | schedule, _ ->
            steps := !steps + schedule.Sweep.s_steps;
            if kills_per_ramp > 0 then
              kills ~mult:m ~resource:rname ~res schedule));
    (!steps, !kill_runs, !ramps, List.rev !fails)
  in
  let results = Par.map ~jobs eval (Array.of_list items) in
  let faulted_steps = ref 0 and kill_runs = ref 0 and ramps = ref 0 in
  Array.iter
    (fun (steps, kr, rr, fs) ->
      faulted_steps := !faulted_steps + steps;
      kill_runs := !kill_runs + kr;
      ramps := !ramps + rr;
      List.iter (fun f -> failures := f :: !failures) fs)
    results;
  {
    lr_case = c.lc_name;
    lr_capacity = capacity;
    lr_points = points;
    lr_kill_runs = !kill_runs;
    lr_resource_ramps = !ramps;
    lr_faulted_steps = !faulted_steps;
    lr_failures = List.rev !failures;
  }

let pp_tally ppf t =
  Fmt.pf ppf "ok=%d shed=%d late=%d" t.lt_ok t.lt_shed t.lt_late;
  if t.lt_transport > 0 then Fmt.pf ppf " tr=%d" t.lt_transport

let pp_report ppf r =
  let curve =
    String.concat ", "
      (List.map
         (fun p ->
           Format.asprintf "%dx %a" p.lp_mult pp_tally p.lp_tally)
         r.lr_points)
  in
  let qdelay =
    List.fold_left
      (fun acc p -> max acc p.lp_tally.lt_max_qdelay)
      0 r.lr_points
  in
  Fmt.pf ppf
    "%-18s load: capacity %d, %s, max qdelay %d, %d kill runs, %d \
     resource ramps, %d failure%s"
    r.lr_case r.lr_capacity curve qdelay r.lr_kill_runs r.lr_resource_ramps
    (List.length r.lr_failures)
    (if List.length r.lr_failures = 1 then "" else "s");
  List.iter
    (fun f ->
      Fmt.pf ppf "@.  FAIL at %dx%a%a@.    %s" f.lf_mult
        (fun ppf -> function
          | None -> ()
          | Some r -> Fmt.pf ppf " resources=%s" r)
        f.lf_resource
        (fun ppf -> function
          | [] -> ()
          | kill -> Fmt.pf ppf " + kill %a" Plan.pp kill)
        f.lf_kill
        (String.concat "\n    " (String.split_on_char '\n' f.lf_reason)))
    r.lr_failures
