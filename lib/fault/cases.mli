(** Ready-made sweep cases over the §7 abstractions ({!Hio_std}) and the
    §11 server ({!Hserver}): each does its concurrent work in the armed
    window, then disarms and probes its own invariants with
    {!Sweep.require} — semaphore units conserved, barrier arrivals
    withdrawn, channel cursors restored, cleanup flags consistent, the
    server quiescent after shutdown. *)

val std : Sweep.case list
(** [sem-units], [barrier-withdraw], [chan-conserve], [bchan-conserve],
    [mvar-lock], [cleanup-flags] — swept with {!Plan.Acting}. *)

val server : Sweep.case
(** [server-requests]: two clients against the §11 server, a probe
    request, graceful shutdown. Sweep it with {!Plan.Acting} and with
    [Named "listener"] / [Named "conn-worker"] for the targeted "kill the
    accept loop mid-accept" / "kill a worker mid-request" adversaries. *)

val server_targets : Plan.target list
(** The three adversaries above, in that order. *)

val naive_lock : Sweep.case
(** A deliberately §5.2-violating lock (bare [take]/[put], nothing
    masked, no restore) — the harness must find and shrink its wedge;
    used by the tests to validate the sweep itself, never part of the
    shipped suites. *)
