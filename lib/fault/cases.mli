(** Ready-made sweep cases over the §7 abstractions ({!Hio_std}) and the
    §11 server ({!Hserver}): each does its concurrent work in the armed
    window, then disarms and probes its own invariants with
    {!Sweep.require} — semaphore units conserved, barrier arrivals
    withdrawn, channel cursors restored, cleanup flags consistent, the
    server quiescent after shutdown. *)

val join : 'a Hio_std.Task.t -> unit Hio.Io.t
(** Await a task, discarding its outcome — unless the awaited exception
    was aimed at {e us} while waiting (the task is still unfinished), in
    which case it is re-thrown so a killed main dies properly. The
    standard way for a sweep case to reap children that may themselves
    be kill victims. *)

val std : Sweep.case list
(** [sem-units], [barrier-withdraw], [chan-conserve], [bchan-conserve],
    [mvar-lock], [cleanup-flags] — swept with {!Plan.Acting}. *)

val server : Sweep.case
(** [server-requests]: two clients against the §11 server, a probe
    request, graceful shutdown. Sweep it with {!Plan.Acting} and with
    [Named "listener"] / [Named "conn-worker"] for the targeted "kill the
    accept loop mid-accept" / "kill a worker mid-request" adversaries. *)

val server_targets : Plan.target list
(** The three adversaries above, in that order. *)

val sup_one_for_one : Sweep.case
(** Two permanent heartbeat children under a one-for-one supervisor:
    after any kill, either both children are live again (≤ 1 restart
    spent) and the tree stops gracefully, or — if the supervisor itself
    was hit — the heartbeats are provably silent (no stranded child). *)

val sup_all_for_one : Sweep.case
(** Same shape under {!Hsup.Sup.All_for_one}; additionally requires the
    two children's start counts stay in lockstep (collective restart). *)

val sup_retry_breaker : Sweep.case
(** {!Hsup.Retry.retry} over {!Hsup.Breaker.run} of a flaky operation:
    the baseline walks closed → open → fail-fast → half-open → closed;
    after the kill, a probe past the reset window must still be admitted
    and close the circuit (no wedged half-open trial). *)

val sup_bulkhead : Sweep.case
(** Four jobs through a capacity-2/waiting-1 {!Hsup.Bulkhead}: after the
    kill, occupancy is back to zero and a fresh call is admitted. *)

val sup_server : Sweep.case
(** The tentpole: four clients saturate the supervised server (capacity
    2 + 1 waiting, so the baseline sheds); after a kill anywhere, every
    surviving client holds an allowed answer (200/503/504 or its own
    timeout) and probe requests get 200 again — from the same tree if
    the supervisor survived, from a fresh one otherwise. *)

val sup_server_targets : Plan.target list
(** [Acting; Named "supervisor"; Named "listener"; Named "conn-worker"]. *)

val sup_sweeps : (Sweep.case * Plan.target) list
(** The full [sup] suite: each generic case with its targets, then
    {!sup_server} against each of {!sup_server_targets}. *)

val actor_link : Sweep.case
(** A monitored, linked child that crashes on demand: whatever single
    kill lands (watcher, parent, child, main), a monitor's [Down]
    arrives {e at most} once — and exactly once when both the watcher
    and the armed monitor outlived the watched actor. The link must
    always unblock the parent (an actor death is never silent). *)

val actor_call : Sweep.case
(** Two clients [call] a counter server: a killed server fails waiting
    calls fast via its exit protocol (no timeout wedge); if the server
    survived, its state is bounded by the completed calls and a
    graceful [stop] drains the mailbox FIFO before acknowledging. *)

val actor_ring : Sweep.case
(** A token ring (4 actors × 2 laps): if nobody was killed the token
    completes; killed or not, each member's single-predecessor hop
    numbers are strictly increasing — per-sender mailbox FIFO under
    every schedule the sweep reaches. *)

val actor_shard : Sweep.case
(** The sharded supervised server ({!Hserver.Shard}): four keyed
    clients against 2 shards (capacity 2 + 1 waiting each), then the
    sup-server contract — allowed answers only, probes per shard answer
    200 again (same tree, or a fresh one if shard-root itself died),
    connect refused after shutdown. *)

val actor_shard_targets : Plan.target list
(** [Acting; Named "router"; Named "shard-0"; Named "shard-sup-0";
    Named "shard-serve"; Named "conn-worker"; Named "shard-root"] —
    every layer of the sharded tree. *)

val actor_sweeps : (Sweep.case * Plan.target) list
(** The full [actor] suite: link/call/ring cases with their targets,
    then {!actor_shard} against each of {!actor_shard_targets}. *)

val naive_lock : Sweep.case
(** A deliberately §5.2-violating lock (bare [take]/[put], nothing
    masked, no restore) — the harness must find and shrink its wedge;
    used by the tests to validate the sweep itself, never part of the
    shipped suites. *)
