(** The kill-point sweep driver for hio programs.

    A {!case} is a program built for adversarial testing: it does its
    concurrent work while the sweep is {e armed}, then calls {!disarm}
    and checks its own invariants with {!require} (probe threads, unit
    counts, cleanup flags). {!sweep} records the case's schedule once,
    then re-runs it once per armed scheduler step with
    {!Hio.Io.Kill_thread} injected at exactly that step — mechanising the
    paper's §5.2/§7 claims, which are universally quantified over where
    the exception lands.

    Verdict per faulted run:
    - the injection victim resolved to the main thread: the whole program
      was killed, so [Value ()] and [Uncaught Kill_thread] are both fine
      and quiescence is not judged (the scheduler stops the instant main
      dies, abandoning well-behaved children mid-step);
    - otherwise the run must end in [Value ()] — every [require] held —
      with {e no thread blocked at exit} ({!Hio.Runtime.blocked_at_exit},
      the deadlock watchdog's wait graph, must be empty).

    Any other outcome is a failure; the plan is shrunk with {!Shrink}
    (restricted to armed steps so a counterexample never names the
    disarmed probe phase) and reported. *)

exception Violation of string
(** What {!require} throws; uncaught it fails the run with the message. *)

val require : string -> bool -> unit Hio.Io.t
(** [require what ok]: assert an invariant from inside a case. *)

val disarm : unit Hio.Io.t
(** End the armed window: steps after this (probes, final checks) are
    not kill points. Runs as a single [lift] step. *)

type case
(** A named program prepared for sweeping. *)

val case : ?max_steps:int -> string -> unit Hio.Io.t -> case
(** [case name io] with a per-run step budget (default [200_000]; a
    faulted run that exceeds it counts as a livelock failure). *)

val case_name : case -> string

type schedule = {
  s_steps : int;  (** baseline scheduler steps to completion *)
  s_armed : (int * int) array;  (** (step index, acting tid), armed only *)
  s_names : (int * string) list;  (** forked thread names, in fork order *)
  s_log : Hio.Step_journal.Replay.t option;
      (** the interleaving log of the multi-domain baseline, when the
          sweep was recorded with [domains > 1]: every faulted run
          replays it, so the kill points probe a schedule with real
          cross-domain interleavings — deterministically *)
}

val record : ?domains:int -> case -> schedule
(** Run the case once with the injection hook as a pure observer. With
    [domains > 1] the baseline first runs live on that many domains to
    capture its replay log, then the schedule (armed steps, names) is
    derived by replaying the log on one domain — observer hooks are not
    supported on live multi-domain runs, and the replay is where the
    faulted runs will live anyway.
    @raise Failure if the baseline does not end in [Value ()] with no
    blocked threads — a case must be correct before it is swept. *)

type failure = {
  f_case : string;
  f_plan : Plan.t;  (** the sweep's failing single-injection plan *)
  f_shrunk : Plan.t;  (** its {!Shrink.minimize} reduction *)
  f_reason : string;
}

type report = {
  r_case : string;
  r_target : Plan.target;
  r_baseline_steps : int;
  r_kill_points : int;  (** distinct armed steps injected (runs made) *)
  r_applied : int;  (** runs whose injection found a live target *)
  r_faulted_steps : int;  (** total steps across all faulted runs *)
  r_failures : failure list;
}

val run_plan : case -> schedule -> Plan.t -> string option * unit Hio.Runtime.result
(** One faulted run; [None] means all invariants held. *)

val sweep :
  ?max_points:int ->
  ?target:Plan.target ->
  ?shrink:bool ->
  ?jobs:int ->
  ?domains:int ->
  case ->
  report
(** Sweep every armed step (down-sampled evenly to [max_points] if
    given), injecting into [target] (default {!Plan.Acting}).

    [domains] (default 1) records the baseline on that many scheduler
    domains and sweeps over the captured replay log (see {!record}):
    same verdicts, same determinism, but the kill points land in a
    schedule with genuine cross-domain interleavings. The faulted run
    replays the log up to the injection, then continues under the free
    single-domain scheduler from the perturbed state.

    [jobs] (default 1) farms the faulted re-runs to that many worker
    domains via {!Par}. The report is deterministic and identical for
    every [jobs] value: workers return per-kill-point partial results
    indexed by position, and the driver merges them in kill-point
    order. Safe because each [Hio.Runtime.run] builds its entire
    scheduler state per call and the armed flag is domain-local. *)

val pp_report : Format.formatter -> report -> unit
(** One line per sweep, plus one block per failure. *)
