open Hio

exception Violation of string

let () =
  Printexc.register_printer (function
    | Violation m -> Some (Printf.sprintf "Violation(%S)" m)
    | _ -> None)

let require what ok =
  if ok then Io.return () else Io.throw (Violation what)

(* The armed window. The flag lives outside the runtime and is toggled by
   a [lift] step inside the case program; the injection hook reads it on
   the OCaml side of the same single-threaded scheduler, so recording and
   replay see identical windows. It is domain-local (not a plain global)
   because [sweep ~jobs] re-runs cases on worker domains: each domain's
   runs are sequential, so a per-domain flag keeps the window exact
   without any cross-domain traffic. *)
let armed_key = Domain.DLS.new_key (fun () -> ref true)
let armed () = Domain.DLS.get armed_key
let disarm = Io.lift (fun () -> armed () := false)

type case = { c_name : string; c_io : unit Io.t; c_max_steps : int }

let case ?(max_steps = 200_000) name io =
  { c_name = name; c_io = io; c_max_steps = max_steps }

let case_name c = c.c_name

type schedule = {
  s_steps : int;
  s_armed : (int * int) array;
  s_names : (int * string) list;
  s_log : Step_journal.Replay.t option;
}

let check_baseline c (r : unit Runtime.result) =
  match r.Runtime.outcome with
  | Runtime.Value () when r.Runtime.blocked_at_exit = [] -> ()
  | Runtime.Value () ->
      Fmt.failwith "fault: case %s: baseline strands blocked threads:@.%a"
        c.c_name Runtime.pp_wait_graph r.Runtime.blocked_at_exit
  | o ->
      Fmt.failwith "fault: case %s: baseline did not complete: %a" c.c_name
        (Runtime.pp_outcome (fun ppf () -> Fmt.string ppf "()"))
        o

let record ?(domains = 1) c =
  (* A multi-domain baseline: run live first to capture the interleaving
     log, then derive the armed schedule by replaying it (the replay is
     single-domain, so the tracer, the observer hook and the DLS armed
     flag all work exactly as in the seed path). Every faulted run then
     replays the same log — the sweep explores kill points over a real
     parallel schedule, deterministically. *)
  let log =
    if domains <= 1 then None
    else begin
      let config =
        {
          Runtime.Config.default with
          Runtime.Config.max_steps = c.c_max_steps;
          domains;
        }
      in
      let r = Runtime.run ~config c.c_io in
      check_baseline c r;
      r.Runtime.replay_log
    end
  in
  let armed = armed () in
  armed := true;
  let acts = ref [] and names = ref [] in
  let tracer = function
    | Runtime.Ev_fork { child; name = Some n; _ } ->
        names := (child, n) :: !names
    | _ -> ()
  in
  let observe ~step ~running =
    if !armed then acts := (step, running) :: !acts;
    None
  in
  let config =
    {
      Runtime.Config.default with
      Runtime.Config.max_steps = c.c_max_steps;
      tracer = Some tracer;
      inject = Some observe;
      replay = log;
    }
  in
  let r = Runtime.run ~config c.c_io in
  check_baseline c r;
  if r.Runtime.replay_diverged then
    Fmt.failwith "fault: case %s: baseline replay diverged from its log"
      c.c_name;
  {
    s_steps = r.Runtime.steps;
    s_armed = Array.of_list (List.rev !acts);
    s_names = List.rev !names;
    s_log = log;
  }

let resolve schedule target ~acting =
  match target with
  | Plan.Acting -> Some acting
  | Plan.Tid t -> Some t
  | Plan.Named n -> (
      match List.find_opt (fun (_, nm) -> nm = n) schedule.s_names with
      | Some (tid, _) -> Some tid
      | None -> None)

(* Judge one faulted run; [main_hit] is whether the injection resolved to
   the main thread (see the .mli on why that relaxes the checks). *)
let classify ~main_hit (r : unit Runtime.result) =
  let graph () =
    Fmt.str "@[<v>%a@]" Runtime.pp_wait_graph r.Runtime.blocked_at_exit
  in
  match r.Runtime.outcome with
  | Runtime.Value () ->
      if main_hit || r.Runtime.blocked_at_exit = [] then None
      else Some ("main returned but threads are wedged:\n" ^ graph ())
  | Runtime.Uncaught Io.Kill_thread when main_hit -> None
  | Runtime.Uncaught (Violation what) ->
      Some ("invariant violated: " ^ what)
  | Runtime.Uncaught e -> Some ("uncaught: " ^ Printexc.to_string e)
  | Runtime.Deadlock -> Some ("deadlock:\n" ^ graph ())
  | Runtime.Out_of_steps -> Some "out of steps (livelock or leak)"

let run_plan c schedule (plan : Plan.t) =
  armed () := true;
  let main_hit = ref false in
  let hook ~step ~running =
    match
      List.find_opt (fun i -> i.Plan.at_step = step) plan
    with
    | None -> None
    | Some i -> (
        match resolve schedule i.Plan.target ~acting:running with
        | None -> None
        | Some tid ->
            if tid = 0 then main_hit := true;
            Some (tid, i.Plan.exn))
  in
  let config =
    {
      Runtime.Config.default with
      Runtime.Config.max_steps = c.c_max_steps;
      inject = Some hook;
      replay = schedule.s_log;
    }
  in
  let r = Runtime.run ~config c.c_io in
  (classify ~main_hit:!main_hit r, r)

type failure = {
  f_case : string;
  f_plan : Plan.t;
  f_shrunk : Plan.t;
  f_reason : string;
}

type report = {
  r_case : string;
  r_target : Plan.target;
  r_baseline_steps : int;
  r_kill_points : int;
  r_applied : int;
  r_faulted_steps : int;
  r_failures : failure list;
}

(* Down-sample [arr] to at most [n] entries, evenly spaced, keeping the
   first and last — a bounded sweep still probes both ends of the run. *)
let sample n arr =
  let len = Array.length arr in
  if len <= n then Array.to_list arr
  else
    List.init n (fun i ->
        arr.(if n = 1 then 0 else i * (len - 1) / (n - 1)))

let sweep ?max_points ?(target = Plan.Acting) ?(shrink = true) ?(jobs = 1)
    ?(domains = 1) c =
  let schedule = record ~domains c in
  let points =
    match max_points with
    | None -> Array.to_list schedule.s_armed
    | Some n -> sample n schedule.s_armed
  in
  let armed_steps =
    List.sort_uniq compare (List.map fst (Array.to_list schedule.s_armed))
  in
  (* One faulted run (plus shrinking, if it failed) per kill point. Each
     evaluation is independent: [Runtime.run] builds all its state per
     call and the armed flag is domain-local, so the points can be
     farmed to worker domains. [Par.map] returns results indexed by
     kill point, and the merge below folds them in that order — the
     report is byte-identical whatever [jobs] is. *)
  let eval (step, _acting) =
    let plan = [ { Plan.at_step = step; target; exn = Io.Kill_thread } ] in
    let verdict, r = run_plan c schedule plan in
    let failure =
      match verdict with
      | None -> None
      | Some reason ->
          let shrunk =
            if not shrink then plan
            else
              (* Only armed steps are admissible counterexamples: a
                 shrink candidate landing in the disarmed probe phase
                 would "fail" for the wrong reason. *)
              Shrink.minimize
                (fun p ->
                  List.for_all
                    (fun i -> List.mem i.Plan.at_step armed_steps)
                    p
                  && fst (run_plan c schedule p) <> None)
                plan
          in
          Some
            { f_case = c.c_name; f_plan = plan; f_shrunk = shrunk;
              f_reason = reason }
    in
    ((if r.Runtime.injections > 0 then 1 else 0), r.Runtime.steps, failure)
  in
  let results = Par.map ~jobs eval (Array.of_list points) in
  let applied = ref 0 and faulted_steps = ref 0 and failures = ref [] in
  Array.iter
    (fun (app, steps, failure) ->
      applied := !applied + app;
      faulted_steps := !faulted_steps + steps;
      Option.iter (fun f -> failures := f :: !failures) failure)
    results;
  {
    r_case = c.c_name;
    r_target = target;
    r_baseline_steps = schedule.s_steps;
    r_kill_points = List.length points;
    r_applied = !applied;
    r_faulted_steps = !faulted_steps;
    r_failures = List.rev !failures;
  }

let pp_report ppf r =
  Fmt.pf ppf "%-18s target=%a: %d kill points (%d applied), baseline %d \
              steps, %d failure%s"
    r.r_case Plan.pp_target r.r_target r.r_kill_points r.r_applied
    r.r_baseline_steps
    (List.length r.r_failures)
    (if List.length r.r_failures = 1 then "" else "s");
  List.iter
    (fun f ->
      Fmt.pf ppf "@.  FAIL %a@.    shrunk to %a@.    %s" Plan.pp f.f_plan
        Plan.pp f.f_shrunk
        (String.concat "\n    " (String.split_on_char '\n' f.f_reason)))
    r.r_failures
