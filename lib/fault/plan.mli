(** Fault plans: where to land which asynchronous exception.

    A plan is a list of injections, each naming a scheduler step (the
    global step index recorded by {!Sweep.record}) and a target thread.
    The sweep driver generates single-injection plans — one per observed
    step — and the shrinker reduces a failing plan to a minimal one. *)

type target =
  | Acting  (** the thread about to run at that step *)
  | Tid of int  (** a fixed thread id *)
  | Named of string
      (** the first thread forked with this [~name] in the recording *)

type injection = { at_step : int; target : target; exn : exn }
type t = injection list

val kill : ?target:target -> int -> injection
(** [kill n] is {!Io.Kill_thread} into the acting thread at step [n] —
    the paper's adversary (§5.2: "no matter where" the exception lands). *)

val pp_target : Format.formatter -> target -> unit
val pp_injection : Format.formatter -> injection -> unit
val pp : Format.formatter -> t -> unit
