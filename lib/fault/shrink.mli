(** Greedy plan shrinking: reduce a failing fault plan to a (locally)
    minimal one that still fails, for readable counterexamples. *)

val candidates : Plan.t -> Plan.t list
(** One-step reductions of a plan: drop one injection, or move one
    injection to an earlier step (halving, decrement, step 0). *)

val minimize : (Plan.t -> bool) -> Plan.t -> Plan.t
(** [minimize fails plan] repeatedly replaces [plan] with the first
    candidate for which [fails] still holds, until none does. Each probe
    is a full re-run, so the caller bounds cost by the plan size (the
    sweep only ever shrinks single-injection plans). If [fails plan] is
    false the plan is returned unchanged. *)
