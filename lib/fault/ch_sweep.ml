open Ch_lang
open Ch_semantics
open Ch_explore

type target = Acting | Tid of Term.tid

type verdict =
  | Completed
  | Killed
  | Broken of string
  | Wedged of (Term.tid * string * Term.mvar_name option) list
  | Livelock

type point = { at_step : int; victim : Term.tid; verdict : verdict }

type report = {
  rc_name : string;
  rc_baseline_steps : int;
  rc_kill_points : int;
  rc_completed : int;
  rc_killed : int;
  rc_wedged : int;
  rc_broken : int;
  rc_livelocked : int;
  rc_faulted_steps : int;
  rc_points : point list;
}

let inject_inflight (st : State.t) ~target ~exn =
  {
    st with
    State.inflight =
      st.State.inflight @ [ (st.State.next_inflight, { State.target; exn }) ];
    next_inflight = st.State.next_inflight + 1;
  }

(* The state just before (Proc GC) wiped the children — that is where
   stranded threads are visible. The trace stores each transition's
   [next], so walk it keeping the predecessor. *)
let pre_gc_state init (run : Sched.run) =
  let rec go prev = function
    | [] -> run.Sched.final
    | tr :: rest ->
        if tr.Step.rule = Step.R_proc_gc then prev
        else go tr.Step.next rest
  in
  go init run.Sched.trace

let classify config ~exn init (run : Sched.run) =
  match run.Sched.outcome with
  | Sched.Out_of_steps -> Livelock
  | Sched.Terminated -> (
      match State.main_result run.Sched.final with
      | None -> (
          match Step.blocked_reasons ~config run.Sched.final with
          | [] ->
              (* main stalled but not Waiting: ill-typed or diverging *)
              Broken "main stuck without waiting"
          | waiting -> Wedged waiting)
      | Some (State.Threw e) when e = exn -> Killed
      | Some (State.Threw e) -> Broken e
      | Some (State.Done _) -> (
          let pre = pre_gc_state init run in
          match
            List.filter
              (fun (tid, _, _) -> tid <> pre.State.main)
              (Step.blocked_reasons ~config pre)
          with
          | [] -> Completed
          | stranded -> Wedged stranded))

let sample n arr =
  let len = Array.length arr in
  if len <= n then Array.to_list arr
  else
    List.init n (fun i -> arr.(if n = 1 then 0 else i * (len - 1) / (n - 1)))

let sweep ?(config = Step.default_config) ?(max_steps = 20_000) ?max_points
    ?(target = Acting) ?(exn = "KillThread") ?(jobs = 1) name init =
  let baseline = Sched.run ~config ~max_steps Sched.Round_robin init in
  (if baseline.Sched.outcome <> Sched.Terminated then
     Fmt.failwith "ch_sweep: %s: baseline hit the step bound" name);
  let kill_points =
    baseline.Sched.trace
    |> List.mapi (fun i tr ->
           match tr.Step.actor with
           | Step.Thread_step tid -> Some (i, tid)
           | Step.Delivery _ | Step.Global -> None)
    |> List.filter_map Fun.id |> Array.of_list
  in
  let points =
    match max_points with
    | None -> Array.to_list kill_points
    | Some n -> sample n kill_points
  in
  (* Faulted runs are pure recursion over immutable [State.t]s, so kill
     points farm straight to worker domains; [Par.map] keeps results in
     kill-point order and the fold below is sequential, so the report
     does not depend on [jobs]. *)
  let eval (at_step, acting) =
    let victim = match target with Acting -> acting | Tid t -> t in
    let intervene ~step st =
      if step = at_step then Some (inject_inflight st ~target:victim ~exn)
      else None
    in
    let run =
      Sched.run ~config ~intervene ~max_steps Sched.Round_robin init
    in
    (at_step, victim, run.Sched.steps, classify config ~exn init run)
  in
  let results = Par.map ~jobs eval (Array.of_list points) in
  let completed = ref 0
  and killed = ref 0
  and wedged = ref 0
  and broken = ref 0
  and livelocked = ref 0
  and faulted = ref 0
  and bad = ref [] in
  Array.iter
    (fun (at_step, victim, steps, verdict) ->
      faulted := !faulted + steps;
      (match verdict with
      | Completed -> incr completed
      | Killed -> incr killed
      | Wedged _ -> incr wedged
      | Broken _ -> incr broken
      | Livelock -> incr livelocked);
      match verdict with
      | Completed | Killed -> ()
      | _ -> bad := { at_step; victim; verdict } :: !bad)
    results;
  {
    rc_name = name;
    rc_baseline_steps = baseline.Sched.steps;
    rc_kill_points = List.length points;
    rc_completed = !completed;
    rc_killed = !killed;
    rc_wedged = !wedged;
    rc_broken = !broken;
    rc_livelocked = !livelocked;
    rc_faulted_steps = !faulted;
    rc_points = List.rev !bad;
  }

let quiescent r = r.rc_wedged = 0 && r.rc_broken = 0 && r.rc_livelocked = 0

let corpus =
  [
    ("hello", State.initial Ch_corpus.Programs.hello);
    ("echo", State.initial ~input:"xy" Ch_corpus.Programs.echo);
    ("ping-pong", State.initial Ch_corpus.Programs.ping_pong);
    ("producer-consumer", State.initial Ch_corpus.Programs.producer_consumer);
    ("kill-sleeping", State.initial Ch_corpus.Programs.kill_sleeping);
    ("mask-interrupt", State.initial Ch_corpus.Programs.mask_interrupt);
    ("counter-loop", State.initial (Ch_corpus.Programs.counter_loop 3));
  ]

let pp_verdict ppf = function
  | Completed -> Fmt.string ppf "completed"
  | Killed -> Fmt.string ppf "killed"
  | Broken e -> Fmt.pf ppf "broken (#%s)" e
  | Livelock -> Fmt.string ppf "livelock"
  | Wedged ws ->
      Fmt.pf ppf "wedged:%a"
        (Fmt.list ~sep:Fmt.nop (fun ppf (tid, why, m) ->
             Fmt.pf ppf " t%d on %s%a" tid why
               (Fmt.option (fun ppf m -> Fmt.pf ppf " m%d" m))
               m))
        ws

let pp_report ppf r =
  Fmt.pf ppf
    "%-18s %d kill points (baseline %d steps): %d completed, %d killed, %d \
     wedged, %d broken, %d livelocked"
    r.rc_name r.rc_kill_points r.rc_baseline_steps r.rc_completed r.rc_killed
    r.rc_wedged r.rc_broken r.rc_livelocked;
  List.iter
    (fun p ->
      Fmt.pf ppf "@.  step %d into t%d: %a" p.at_step p.victim pp_verdict
        p.verdict)
    r.rc_points
