(** The I/O fault sweep: {!Sweep}'s discipline, aimed at the transport.

    Where the kill sweep injects {!Hio.Io.Kill_thread} at every armed
    {e scheduler step}, this driver injects transport faults at every
    armed {e I/O operation site}: it records the case once with an empty
    {!Ev.Chaos} plan, reads how many sends / recvs / accepts / dials the
    schedule reached, and re-runs the case once per (site, fault) pair —
    EOF, ECONNRESET, short writes, delayed readiness, trickled reads —
    demanding the same verdict as the kill sweep ([Value ()], invariants
    held, no thread blocked at exit).

    {b Combined kill×I/O mode} ([kills_per_point > 0]) goes one step
    further: for each fault point whose run was clean, the faulted
    schedule is re-recorded and {!Hio.Io.Kill_thread} is additionally
    injected at a sample of its armed steps — asynchronous exceptions
    landing {e while the transport is misbehaving}, the paper's §5.2
    adversary composed with partial failure.

    Everything is deterministic: the chaos control state is created
    fresh inside each run (one [lift] step), plans are plain data, and
    re-runs are farmed to worker domains with results merged in point
    order, so reports are byte-identical for every [jobs] value. *)

type case
(** A named program prepared for I/O sweeping. The body receives the
    per-run {!Ev.Chaos.ctl} so it can build a wrapped backend (or wrap
    bare pipe ends) and call {!Ev.Chaos.disarm} before its probe
    phase. *)

val case :
  ?max_steps:int -> string -> (Ev.Chaos.ctl -> unit Hio.Io.t) -> case
(** Default [max_steps] is [400_000] — I/O cases run servers. *)

val case_name : case -> string

type io_failure = {
  if_case : string;
  if_rule : Ev.Chaos.rule;  (** the failing fault injection *)
  if_shrunk : Ev.Chaos.rule;  (** its site moved as early as it will go *)
  if_kill : Plan.t;
      (** the kill plan layered on top ([[]] for a pure I/O failure);
          already {!Shrink.minimize}d *)
  if_reason : string;
}

type report = {
  ir_case : string;
  ir_baseline_steps : int;
  ir_sites : (Ev.Chaos.op * int) list;
      (** armed sites per op in the recorded schedule, {!Ev.Chaos.all_ops}
          order *)
  ir_points : int;  (** (site, fault) pairs injected — faulted runs made *)
  ir_kill_runs : int;  (** combined kill×I/O runs made on top *)
  ir_faulted_steps : int;  (** total steps across all faulted runs *)
  ir_by_kind : (string * int) list;
      (** fault points per {!Ev.Chaos.fault_label} kind (plus a ["kill"]
          entry for combined runs), label-sorted *)
  ir_failures : io_failure list;
}

val record :
  ?domains:int -> case -> Sweep.schedule * (Ev.Chaos.op * int) list
(** One clean-plan run: the schedule plus the armed site counts.
    [domains > 1] records the baseline live on that many scheduler
    domains and derives the schedule from its replay log (see
    {!Sweep.record}); the site counts come from the single-domain
    replay, where the per-run ctl lives on the driver domain.
    @raise Failure if the baseline does not end in [Value ()] with no
    blocked threads. *)

val run_rule :
  case ->
  Sweep.schedule ->
  Ev.Chaos.rule ->
  Plan.t ->
  string option * unit Hio.Runtime.result
(** One faulted run with [rule] armed and the kill plan layered on top
    ([[]] for fault-only); [None] means all invariants held. Exposed for
    replaying a reported failure. *)

val sweep :
  ?max_sites_per_op:int ->
  ?kills_per_point:int ->
  ?shrink:bool ->
  ?jobs:int ->
  ?domains:int ->
  case ->
  report
(** Enumerate every (op, site, fault) point — sites down-sampled evenly
    per op to [max_sites_per_op] if given, faults from
    {!Ev.Chaos.default_faults} — and re-run the case once per point.
    [kills_per_point] (default [0]) additionally re-records each clean
    point's faulted schedule and layers a kill at that many of its armed
    steps, evenly sampled. [jobs] farms points to worker domains; the
    report is identical for every value. [domains] (default 1) records
    the baseline on that many scheduler domains; faulted runs replay
    its log until the injected fault diverges the schedule, then
    continue deterministically under the free single-domain scheduler.
    Combined-mode re-recordings of faulted schedules stay single-domain
    regardless. *)

val pp_report : Format.formatter -> report -> unit
