(* The overload suite: open-loop load ramps against the supervised and
   the sharded server, on a chaos-wrapped sim backend so the driver's
   resource-exhaustion plans (fd budgets, backlog caps, send caps) bite
   the same transport the load rides on.

   Each ramp forks [base * mult] clients whose arrival times are spread
   evenly over a fixed virtual-time window — the arrival RATE scales
   with the multiplier, the window does not, which is what "10x offered
   load" means. Every client records exactly one lawful outcome: 200
   (goodput), 503 (shed — bulkhead, CoDel queue deadline, early
   deadline shed, brownout), 504 / own timeout (late), or a transport
   error (reset, refusal, dial failure, resource exhaustion). After the
   ramp the case disarms both sweeps, requires lawful outcomes for
   every surviving client, and requires steady state back (probes
   answer 200 once load has drained — retried past breaker reset
   windows, from a fresh tree if the kill took the supervisor). *)

open Hio
open Hio_std
open Hserver
open Io

let join = Cases.join
let transient e = Hsup.Retry.transient_io e

(* Arrivals at 1x: [base] clients over [window] virtual µs. *)
let base = 6
let window = 300

(* CoDel queue-deadline target for both servers' bulkheads, and the
   lawful cap on observed sojourn: an admitted request won the race
   against its queue timer, so its recorded delay can only exceed the
   target by scheduler wakeup slop — 2x is generous. *)
let queue_target = 60
let qdelay_bound = 2 * queue_target

let overload_config =
  {
    Server.default_config with
    max_concurrent = 2;
    max_waiting = 4;
    queue_target = Some queue_target;
    dial_timeout = 2_000;
    restart_intensity = { Hsup.Sup.max_restarts = 16; window = 1_000_000 };
  }

(* The resource-exhaustion plans the chrun overload suite arms on top
   of the clean ramps: a budget of live connections (EMFILE), a capped
   listener backlog (dial refusals), a capped send buffer (short
   writes + Buffer_full). Budgets sized to bite at 2x and above. *)
let overload_resources =
  [
    ("fd-budget", { Ev.Chaos.no_resources with fd_budget = Some 6 });
    ("backlog", { Ev.Chaos.no_resources with backlog_cap = Some 4 });
    ("send-cap", { Ev.Chaos.no_resources with send_cap = Some 8 });
  ]

let request = { Http.meth = "GET"; path = "/hello"; headers = []; body = "" }

(* One client: arrive at [at], dial, ask, classify. [`Other] is the
   unlawful bucket the require below rejects. *)
let client ~connect ~at outcomes i =
  sleep at >>= fun () ->
  catch
    ( connect () >>= fun conn ->
      Http.write_request conn request >>= fun () ->
      Combinators.timeout 1_000 (Http.read_response conn) >>= fun r ->
      lift (fun () ->
          outcomes.(i) <-
            Some
              (match r with
              | None -> `Late
              | Some resp -> (
                  match resp.Http.status with
                  | 200 -> `Ok
                  | 503 -> `Shed
                  | 504 -> `Late
                  | s -> `Other s))) )
    (fun e ->
      if transient e || e = Server.Dial_timeout then
        lift (fun () -> outcomes.(i) <- Some `Transport)
      else throw e)

(* Fork the whole ramp, join it, and require lawful outcomes from every
   client that ran to completion (a kill victim is exempt — its slot
   stays [None]). Returns the survivor counts. *)
let ramp ~name ~mult ~connect =
  let n = base * mult in
  let interval = max 1 (window / n) in
  lift (fun () -> Array.make n None) >>= fun outcomes ->
  let rec spawn i acc =
    if i >= n then return (List.rev acc)
    else
      Task.spawn
        ~name:(Printf.sprintf "client-%d" i)
        (client ~connect ~at:(i * interval) outcomes i)
      >>= fun t -> spawn (i + 1) (t :: acc)
  in
  spawn 0 [] >>= fun clients ->
  let rec reap = function
    | [] -> return ()
    | t :: rest -> join t >>= fun () -> reap rest
  in
  reap clients >>= fun () ->
  let rec lawful i ts =
    match ts with
    | [] -> return ()
    | t :: rest ->
        Task.poll t >>= fun st ->
        lift (fun () -> outcomes.(i)) >>= fun o ->
        (match st with
        | Some (Stdlib.Ok ()) ->
            Sweep.require
              (name ^ ": every surviving client got a lawful outcome")
              (match o with
              | Some (`Ok | `Shed | `Late | `Transport) -> true
              | Some (`Other _) | None -> false)
        | _ -> return ())
        >>= fun () -> lawful (i + 1) rest
  in
  lawful 0 clients >>= fun () ->
  lift (fun () ->
      let ok = ref 0 and shed = ref 0 and late = ref 0 and tr = ref 0 in
      Array.iter
        (function
          | Some `Ok -> incr ok
          | Some `Shed -> incr shed
          | Some `Late -> incr late
          | Some `Transport -> incr tr
          | Some (`Other _) | None -> ())
        outcomes;
      (n, !ok, !shed, !late, !tr))

(* Steady state, shared shape with the chaos suite's io-server: once
   load has drained, probes must answer 200 — from the same tree if its
   root supervisor survived (retrying past breaker reset windows and
   restart churn), from a fresh tree otherwise. *)
let steady ~name ~probe ~root_alive ~fresh_tree =
  let rec probe_retry n =
    probe () >>= fun ok ->
    if ok then return true
    else if n <= 1 then return false
    else sleep 300 >>= fun () -> probe_retry (n - 1)
  in
  root_alive () >>= fun alive ->
  if alive then
    probe_retry 8 >>= fun ok ->
    if ok then return ()
    else
      root_alive () >>= fun still_alive ->
      Sweep.require (name ^ ": steady state answers 200") (not still_alive)
      >>= fun () -> fresh_tree ()
  else fresh_tree ()

let max_qdelay registry names =
  lift (fun () ->
      List.fold_left
        (fun acc n ->
          max acc
            (Obs.Metrics.gauge_max
               (Obs.Metrics.gauge registry
                  ~labels:[ ("name", n) ]
                  "sup_bulkhead_queue_delay")))
        0 names)

let tally ~counts:(offered, ok, shed, late, tr) ~qdelay =
  {
    Load_sweep.lt_offered = offered;
    lt_ok = ok;
    lt_shed = shed;
    lt_late = late;
    lt_transport = tr;
    lt_max_qdelay = qdelay;
  }

(* --- overload-server: the supervised §11 server under a ramp ------------ *)

let overload_server =
  Load_sweep.case ~qdelay_bound "overload-server" (fun ctl ~mult ->
      (* a handler with a real (virtual) cost, so capacity is finite
         and the ramp can actually exceed it *)
      let handler _req = sleep 30 >>= fun () -> return (Http.ok "hi") in
      lift (fun () -> Obs.Metrics.create ()) >>= fun registry ->
      let backend = Ev.Chaos.wrap ctl (Ev.Backend.sim ()) in
      Server.start ~config:overload_config ~metrics:registry ~backend handler
      >>= fun server ->
      ramp ~name:"overload-server" ~mult
        ~connect:(fun () -> Server.connect server)
      >>= fun counts ->
      Sweep.disarm >>= fun () ->
      Ev.Chaos.disarm ctl >>= fun () ->
      let probe () =
        catch
          ( Server.connect server >>= fun conn ->
            Http.write_request conn request >>= fun () ->
            Combinators.timeout 1_000 (Http.read_response conn) >>= fun r ->
            return
              (match r with
              | Some resp -> resp.Http.status = 200
              | None -> false) )
          (fun e ->
            if transient e || e = Server.Dial_timeout then return false
            else throw e)
      in
      let root_alive () =
        match Server.supervisor server with
        | None -> return true
        | Some sup -> Hsup.Sup.alive sup
      in
      let fresh_tree () =
        Server.start ~config:overload_config ~backend:(Ev.Backend.sim ())
          handler
        >>= fun fresh ->
        catch
          ( Server.connect fresh >>= fun conn ->
            Http.write_request conn request >>= fun () ->
            Combinators.timeout 1_000 (Http.read_response conn) >>= fun r ->
            return
              (match r with
              | Some resp -> resp.Http.status = 200
              | None -> false) )
          (fun e ->
            if transient e || e = Server.Dial_timeout then return false
            else throw e)
        >>= fun ok ->
        Sweep.require "overload-server: a fresh tree restores service" ok
        >>= fun () ->
        Server.shutdown fresh >>= fun _ -> return ()
      in
      steady ~name:"overload-server" ~probe ~root_alive ~fresh_tree
      >>= fun () ->
      max_qdelay registry [ "server" ] >>= fun qdelay ->
      Server.shutdown server >>= fun _stats ->
      catch
        (Server.connect server >>= fun _ -> return false)
        (fun e -> return (e = Server.Server_stopped))
      >>= Sweep.require "overload-server: connect after shutdown is refused"
      >>= fun () -> return (tally ~counts ~qdelay))

(* --- overload-shard: the sharded server, brownout included ------------- *)

let overload_shard_config =
  { overload_config with mailbox_bound = Some 16 }

let overload_shard =
  Load_sweep.case ~qdelay_bound "overload-shard" (fun ctl ~mult ->
      (* a handler with a real (virtual) cost, so capacity is finite
         and the ramp can actually exceed it *)
      let handler _req = sleep 30 >>= fun () -> return (Http.ok "hi") in
      lift (fun () -> Obs.Metrics.create ()) >>= fun registry ->
      let backend = Ev.Chaos.wrap ctl (Ev.Backend.sim ()) in
      Shard.start ~config:overload_shard_config ~metrics:registry ~backend
        ~shards:2 handler
      >>= fun server ->
      ramp ~name:"overload-shard" ~mult
        ~connect:(fun () -> Shard.connect server)
      >>= fun counts ->
      Sweep.disarm >>= fun () ->
      Ev.Chaos.disarm ctl >>= fun () ->
      let probe () =
        catch
          ( Shard.connect server >>= fun conn ->
            Http.write_request conn request >>= fun () ->
            Combinators.timeout 1_000 (Http.read_response conn) >>= fun r ->
            return
              (match r with
              | Some resp -> resp.Http.status = 200
              | None -> false) )
          (fun e ->
            if transient e || e = Server.Dial_timeout then return false
            else throw e)
      in
      let root_alive () = Hsup.Sup.alive (Shard.supervisor server) in
      let fresh_tree () =
        Shard.start ~config:overload_shard_config ~shards:2 handler
        >>= fun fresh ->
        catch
          ( Shard.connect fresh >>= fun conn ->
            Http.write_request conn request >>= fun () ->
            Combinators.timeout 1_000 (Http.read_response conn) >>= fun r ->
            return
              (match r with
              | Some resp -> resp.Http.status = 200
              | None -> false) )
          (fun e ->
            if transient e || e = Server.Dial_timeout then return false
            else throw e)
        >>= fun ok ->
        Sweep.require "overload-shard: a fresh tree restores service" ok
        >>= fun () ->
        Shard.shutdown fresh >>= fun _ -> return ()
      in
      steady ~name:"overload-shard" ~probe ~root_alive ~fresh_tree
      >>= fun () ->
      max_qdelay registry [ "shard-0"; "shard-1" ] >>= fun qdelay ->
      Shard.shutdown server >>= fun _stats ->
      catch
        (Shard.connect server >>= fun _ -> return false)
        (fun e -> return (e = Server.Server_stopped))
      >>= Sweep.require "overload-shard: connect after shutdown is refused"
      >>= fun () -> return (tally ~counts ~qdelay))

let overload = [ overload_server; overload_shard ]
