(* The I/O chaos suite: programs hardened to survive any single
   transport fault (and, in combined mode, a kill layered on top). Each
   case takes the per-run {!Ev.Chaos.ctl}, builds its transport through
   the chaos decorator, runs its concurrent work while armed, then
   disarms BOTH sweeps — the kill window and the chaos plan — and probes
   its invariants on a clean transport. *)

open Hio
open Hio_std
open Hserver
open Io

let join = Cases.join
let transient e = Hsup.Retry.transient_io e

(* --- io-pipe: one bounded pipe, writer vs reader under fire ------------- *)

(* A writer streams a known payload through a chaos-wrapped pipe; the
   reader accumulates until EOF. Any single fault may cut the stream
   short, but never corrupt it: what arrived must be a prefix of what
   was sent (short writes deliver a prefix then reset; trickles and
   delays reorder nothing). Afterwards a fresh pipe must still
   round-trip, and close must be idempotent.

   Each side guards its own liveness with a virtual-time deadline, like
   a real peer: a killed reader leaves the bounded pipe full forever,
   and a compensation spin in main (the kill cases' trick) would starve
   the timer wheel the chaos delays arm — so the parked survivor must
   time itself out instead. *)
let io_pipe =
  Io_sweep.case ~max_steps:100_000 "io-pipe"
    (fun ctl ->
      Ev.Backend.sim_pipe ~capacity:4 () >>= fun (a, b) ->
      let a = Ev.Chaos.wrap_conn ctl a and b = Ev.Chaos.wrap_conn ctl b in
      let payload = "hello, chaos!" in
      lift (fun () -> Buffer.create 16) >>= fun got ->
      let writer =
        catch
          (ignore_result
             (Combinators.timeout 5_000 (a.Ev.Backend.c_send payload)))
          (fun e -> if transient e then return () else throw e)
        >>= fun () -> a.Ev.Backend.c_close ()
      in
      let reader =
        let rec go () =
          b.Ev.Backend.c_recv_char () >>= fun c ->
          lift (fun () -> Buffer.add_char got c) >>= fun () -> go ()
        in
        catch
          (ignore_result (Combinators.timeout 5_000 (go ())))
          (fun e -> if transient e then return () else throw e)
        >>= fun () -> b.Ev.Backend.c_close ()
      in
      Task.spawn ~name:"writer" writer >>= fun w ->
      Task.spawn ~name:"reader" reader >>= fun r ->
      join w >>= fun () ->
      (* a killed writer never closes: release the reader ourselves *)
      a.Ev.Backend.c_close () >>= fun () ->
      join r >>= fun () ->
      b.Ev.Backend.c_close () >>= fun () ->
      Sweep.disarm >>= fun () ->
      Ev.Chaos.disarm ctl >>= fun () ->
      lift (fun () -> Buffer.contents got) >>= fun got ->
      Sweep.require "io-pipe: received is a prefix of sent"
        (String.length got <= String.length payload
        && got = String.sub payload 0 (String.length got))
      >>= fun () ->
      (* the fabric is intact: a fresh pipe round-trips, drains to EOF
         after close, and close is idempotent *)
      Ev.Backend.sim_pipe () >>= fun (c, d) ->
      c.Ev.Backend.c_send "ok" >>= fun () ->
      c.Ev.Backend.c_close () >>= fun () ->
      c.Ev.Backend.c_close () >>= fun () ->
      d.Ev.Backend.c_recv_char () >>= fun c1 ->
      d.Ev.Backend.c_recv_char () >>= fun c2 ->
      catch
        (d.Ev.Backend.c_recv_char () >>= fun _ -> return false)
        (fun e -> return (e = End_of_file))
      >>= fun eof ->
      Sweep.require "io-pipe: fresh pipe drains then EOF"
        (c1 = 'o' && c2 = 'k' && eof))

(* --- io-server: the supervised server under transport fire -------------- *)

let io_server_config =
  {
    Server.default_config with
    max_concurrent = 2;
    max_waiting = 2;
    dial_timeout = 400;
    restart_intensity = { Hsup.Sup.max_restarts = 8; window = 100_000 };
  }

(* The tentpole case: the supervised server on a chaos-wrapped sim
   backend, three clients that retry through transient faults. The
   hardening contract: whatever single transport fault (or fault+kill)
   lands, every client that survives gets a lawful outcome — an HTTP
   status the server may send, its own timeout, or a transport-level
   degradation — and the tree returns to steady state, proven by probe
   requests on the disarmed transport that must be served with 200. *)
let io_server =
  Io_sweep.case ~max_steps:600_000 "io-server"
    (fun ctl ->
      let handler =
        Server.route [ ("/hello", fun body -> Http.ok ("hi" ^ body)) ]
      in
      let backend = Ev.Chaos.wrap ctl (Ev.Backend.sim ()) in
      Server.start ~config:io_server_config ~backend handler
      >>= fun server ->
      lift (fun () -> Array.make 3 None) >>= fun outcomes ->
      let client i =
        catch
          ( Server.connect server >>= fun conn ->
            Http.write_request conn
              { Http.meth = "GET"; path = "/hello"; headers = []; body = "" }
            >>= fun () ->
            Combinators.timeout 2_000 (Http.read_response conn)
            >>= fun r ->
            lift (fun () ->
                outcomes.(i) <-
                  Some
                    (match r with
                    | None -> `Timed_out
                    | Some resp -> `Status resp.Http.status)) )
          (fun e ->
            if transient e || e = Server.Dial_timeout then
              lift (fun () -> outcomes.(i) <- Some `Transport)
            else throw e)
      in
      Task.spawn ~name:"client0" (client 0) >>= fun c0 ->
      Task.spawn ~name:"client1" (client 1) >>= fun c1 ->
      Task.spawn ~name:"client2" (client 2) >>= fun c2 ->
      join c0 >>= fun () ->
      join c1 >>= fun () ->
      join c2 >>= fun () ->
      Sweep.disarm >>= fun () ->
      Ev.Chaos.disarm ctl >>= fun () ->
      (* every surviving client recorded a lawful outcome *)
      let check t i =
        Task.poll t >>= fun st ->
        lift (fun () -> outcomes.(i)) >>= fun o ->
        match st with
        | Some (Stdlib.Ok ()) ->
            Sweep.require "io-server: surviving client got a lawful outcome"
              (match o with
              | Some (`Status (200 | 503 | 504))
              | Some `Timed_out | Some `Transport ->
                  true
              | _ -> false)
        | _ -> return () (* the client was the kill victim *)
      in
      check c0 0 >>= fun () ->
      check c1 1 >>= fun () ->
      check c2 2 >>= fun () ->
      (* steady state on the now-clean transport: 200s again — twice, so
         the first probe wasn't a fluke of a half-restarted tree *)
      let probe srv =
        catch
          ( Server.connect srv >>= fun conn ->
            Http.write_request conn
              { Http.meth = "GET"; path = "/hello"; headers = []; body = "" }
            >>= fun () ->
            Combinators.timeout 2_000 (Http.read_response conn)
            >>= fun r ->
            return
              (match r with
              | Some resp -> resp.Http.status = 200
              | None -> false) )
          (fun e ->
            if transient e || e = Server.Dial_timeout then return false
            else throw e)
      in
      let sup_alive () =
        match Server.supervisor server with
        | None -> return true
        | Some sup -> Hsup.Sup.alive sup
      in
      let fresh_tree () =
        (* the supervisor itself died (combined mode can kill it): a
           process manager would restart the whole tree — model that and
           require service is restored on a clean transport *)
        Server.start ~config:io_server_config
          ~backend:(Ev.Backend.sim ()) handler
        >>= fun fresh ->
        probe fresh >>= fun ok ->
        Sweep.require "io-server: a fresh tree restores service" ok
        >>= fun () ->
        Server.shutdown fresh >>= fun _ -> return ()
      in
      sup_alive () >>= fun alive ->
      (if alive then
         probe server >>= fun ok1 ->
         if ok1 then
           probe server >>= fun ok2 ->
           Sweep.require "io-server: steady state persists" ok2
         else
           sup_alive () >>= fun still_alive ->
           Sweep.require "io-server: steady state answers 200"
             (not still_alive)
           >>= fun () -> fresh_tree ()
       else fresh_tree ())
      >>= fun () ->
      Server.shutdown server >>= fun _stats ->
      catch
        (Server.connect server >>= fun _ -> return false)
        (fun e -> return (e = Server.Server_stopped))
      >>= Sweep.require "io-server: connect after shutdown is refused")

let chaos = [ io_pipe; io_server ]
