open Hio

(* Per-domain plumbing between the driver and the case body. A case's
   program must create its chaos control state fresh inside each run
   (site counters are per-run, like a metrics registry), yet the driver
   chooses the plan per run and wants the [ctl] back after a recording.
   Both cells are domain-local for the same reason [Sweep]'s armed flag
   is: [Par.map] farms re-runs to worker domains, each of which runs its
   cases sequentially, so a per-domain cell is race-free and keeps every
   domain's numbering exact. *)
let plan_key = Domain.DLS.new_key (fun () -> ref ([] : Ev.Chaos.plan))

let ctl_key =
  Domain.DLS.new_key (fun () -> ref (None : Ev.Chaos.ctl option))

type case = {
  ic_name : string;
  ic_max_steps : int;
  ic_body : Ev.Chaos.ctl -> unit Io.t;
}

let case ?(max_steps = 400_000) name body =
  { ic_name = name; ic_max_steps = max_steps; ic_body = body }

let case_name c = c.ic_name

(* The [Sweep.case] view of an I/O case: one [lift] step builds the ctl
   from the domain's current plan (and parks it for the driver), then
   the body runs against it. *)
let kill_case c =
  Sweep.case ~max_steps:c.ic_max_steps c.ic_name
    (Io.bind
       (Io.lift (fun () ->
            let ctl = Ev.Chaos.create !(Domain.DLS.get plan_key) in
            Domain.DLS.get ctl_key := Some ctl;
            ctl))
       c.ic_body)

let record ?domains c =
  Domain.DLS.get plan_key := [];
  let schedule = Sweep.record ?domains (kill_case c) in
  let sites =
    match !(Domain.DLS.get ctl_key) with
    | Some ctl -> Ev.Chaos.site_counts ctl
    | None -> List.map (fun op -> (op, 0)) Ev.Chaos.all_ops
  in
  (schedule, sites)

let run_rule c schedule rule kill_plan =
  Domain.DLS.get plan_key := [ rule ];
  Sweep.run_plan (kill_case c) schedule kill_plan

type io_failure = {
  if_case : string;
  if_rule : Ev.Chaos.rule;
  if_shrunk : Ev.Chaos.rule;
  if_kill : Plan.t;
  if_reason : string;
}

type report = {
  ir_case : string;
  ir_baseline_steps : int;
  ir_sites : (Ev.Chaos.op * int) list;
  ir_points : int;
  ir_kill_runs : int;
  ir_faulted_steps : int;
  ir_by_kind : (string * int) list;
  ir_failures : io_failure list;
}

(* Down-sample to at most [n], evenly spaced, keeping first and last —
   same policy as the kill sweep's step sampling. *)
let sample n l =
  let arr = Array.of_list l in
  let len = Array.length arr in
  if len <= n then l
  else
    List.init n (fun i ->
        arr.(if n = 1 then 0 else i * (len - 1) / (n - 1)))

(* Move a failing rule's site as early as it will go while still
   failing: earlier sites make shorter, more readable counterexamples
   (the fault lands before most of the run has happened). *)
let shrink_rule c schedule rule =
  let fails at =
    fst (run_rule c schedule { rule with Ev.Chaos.r_at = at } []) <> None
  in
  let rec go at =
    if at = 0 then at
    else
      match
        List.find_opt
          (fun a -> a < at && fails a)
          (List.sort_uniq compare [ 0; at / 2; at - 1 ])
      with
      | Some a -> go a
      | None -> at
  in
  { rule with Ev.Chaos.r_at = go rule.Ev.Chaos.r_at }

let sweep ?max_sites_per_op ?(kills_per_point = 0) ?(shrink = true)
    ?(jobs = 1) ?domains c =
  (* [domains] shapes only the initial baseline (live multi-domain run +
     replay-log capture); combined-mode re-recordings of chaos-faulted
     schedules stay live single-domain — a fault changes behavior, so
     the multi-domain log cannot be followed through it. *)
  let schedule, sites = record ?domains c in
  let points =
    List.concat_map
      (fun (op, n) ->
        let site_list = List.init n Fun.id in
        let site_list =
          match max_sites_per_op with
          | None -> site_list
          | Some m -> sample m site_list
        in
        List.concat_map
          (fun at ->
            List.map
              (fun f -> { Ev.Chaos.r_op = op; r_at = at; r_fault = f })
              (Ev.Chaos.default_faults op))
          site_list)
      sites
  in
  (* One faulted run per point; for clean points in combined mode, the
     faulted schedule is re-recorded (the clean verdict certifies it
     satisfies [record]'s baseline criteria) and kills are layered at a
     sample of its armed steps. Each evaluation builds all its state per
     run, so points can be farmed to worker domains; the merge below
     folds [Par.map]'s position-indexed results in point order, keeping
     the report identical for every [jobs] value. *)
  let eval rule =
    let verdict, r = run_rule c schedule rule [] in
    let steps = ref r.Runtime.steps in
    let kill_runs = ref 0 in
    let failures = ref [] in
    (match verdict with
    | Some reason ->
        let shrunk = if shrink then shrink_rule c schedule rule else rule in
        failures :=
          [
            { if_case = c.ic_name; if_rule = rule; if_shrunk = shrunk;
              if_kill = []; if_reason = reason };
          ]
    | None ->
        if kills_per_point > 0 then begin
          Domain.DLS.get plan_key := [ rule ];
          let fsched = Sweep.record (kill_case c) in
          steps := !steps + fsched.Sweep.s_steps;
          let armed_steps =
            List.sort_uniq compare
              (List.map fst (Array.to_list fsched.Sweep.s_armed))
          in
          List.iter
            (fun step ->
              incr kill_runs;
              let kplan = [ Plan.kill step ] in
              let v, kr = run_rule c fsched rule kplan in
              steps := !steps + kr.Runtime.steps;
              match v with
              | None -> ()
              | Some reason ->
                  let kshrunk =
                    if not shrink then kplan
                    else
                      Shrink.minimize
                        (fun p ->
                          List.for_all
                            (fun i ->
                              List.mem i.Plan.at_step armed_steps)
                            p
                          && fst (run_rule c fsched rule p) <> None)
                        kplan
                  in
                  failures :=
                    { if_case = c.ic_name; if_rule = rule;
                      if_shrunk = rule; if_kill = kshrunk;
                      if_reason = reason }
                    :: !failures)
            (sample kills_per_point armed_steps)
        end);
    (!steps, !kill_runs, List.rev !failures)
  in
  let results = Par.map ~jobs eval (Array.of_list points) in
  let faulted_steps = ref 0 and kill_runs = ref 0 and failures = ref [] in
  Array.iter
    (fun (steps, kr, fs) ->
      faulted_steps := !faulted_steps + steps;
      kill_runs := !kill_runs + kr;
      List.iter (fun f -> failures := f :: !failures) fs)
    results;
  let by_kind =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun r ->
        let k = Ev.Chaos.fault_label r.Ev.Chaos.r_fault in
        Hashtbl.replace tbl k
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
      points;
    let kinds =
      Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl []
      |> List.sort compare
    in
    if !kill_runs > 0 then kinds @ [ ("kill", !kill_runs) ] else kinds
  in
  {
    ir_case = c.ic_name;
    ir_baseline_steps = schedule.Sweep.s_steps;
    ir_sites = sites;
    ir_points = List.length points;
    ir_kill_runs = !kill_runs;
    ir_faulted_steps = !faulted_steps;
    ir_by_kind = by_kind;
    ir_failures = List.rev !failures;
  }

let pp_report ppf r =
  let sites =
    String.concat " "
      (List.filter_map
         (fun (op, n) ->
           if n = 0 then None
           else Some (Printf.sprintf "%s=%d" (Ev.Chaos.op_label op) n))
         r.ir_sites)
  in
  Fmt.pf ppf
    "%-18s io: sites {%s}, %d fault points, %d kill runs, baseline %d \
     steps, %d failure%s"
    r.ir_case sites r.ir_points r.ir_kill_runs r.ir_baseline_steps
    (List.length r.ir_failures)
    (if List.length r.ir_failures = 1 then "" else "s");
  List.iter
    (fun f ->
      Fmt.pf ppf "@.  FAIL %a@.    shrunk to %a%a@.    %s" Ev.Chaos.pp_rule
        f.if_rule Ev.Chaos.pp_rule f.if_shrunk
        (fun ppf -> function
          | [] -> ()
          | kill -> Fmt.pf ppf " + kill %a" Plan.pp kill)
        f.if_kill
        (String.concat "\n    " (String.split_on_char '\n' f.if_reason)))
    r.ir_failures
