(** Kill-point sweep for object-language (Ch) programs: the same
    adversary as {!Sweep}, but driven through the paper's small-step
    rules instead of the hio runtime.

    The baseline schedule is one {!Ch_explore.Sched.run} under
    round-robin; every step whose actor is a thread redex is a kill
    point. Each faulted re-run uses the scheduler's [intervene] hook to
    append an in-flight exception [⟦t ⇐ KillThread⟧] to the state at
    exactly that step — delivery then goes through the ordinary
    (Receive)/(Interrupt) rules, so the injected kill is
    indistinguishable from a real [throwTo] racing the program.

    Unlike the hio sweep, wedges are {e expected} here: the corpus
    programs are written without §5.2 protection, and the sweep's job is
    to exhibit — not to fail on — the states the paper's discipline
    exists to prevent. {!quiescent} is the strict judgement for callers
    that want one. *)

open Ch_lang
open Ch_semantics

type target = Acting | Tid of Term.tid
(** Victim selection: the thread acting at the kill point, or a fixed
    thread id. *)

type verdict =
  | Completed  (** main finished with a value *)
  | Killed  (** main finished by throwing the injected exception *)
  | Broken of string  (** main threw some other exception *)
  | Wedged of (Term.tid * string * Term.mvar_name option) list
      (** threads left waiting: a deadlock if main never finished, or
          children stranded in the pre-(Proc GC) state if it did *)
  | Livelock  (** the faulted run hit its step bound *)

type point = { at_step : int; victim : Term.tid; verdict : verdict }

type report = {
  rc_name : string;
  rc_baseline_steps : int;
  rc_kill_points : int;
  rc_completed : int;
  rc_killed : int;
  rc_wedged : int;
  rc_broken : int;
  rc_livelocked : int;
  rc_faulted_steps : int;  (** total steps across all faulted runs *)
  rc_points : point list;  (** every non-[Completed]/[Killed] point *)
}

val sweep :
  ?config:Step.config ->
  ?max_steps:int ->
  ?max_points:int ->
  ?target:target ->
  ?exn:Term.exn_name ->
  ?jobs:int ->
  string ->
  State.t ->
  report
(** [sweep name init]: record the round-robin baseline (which must
    terminate), then re-run once per kill point (down-sampled evenly to
    [max_points] if given) injecting [exn] (default ["KillThread"]) into
    [target] (default {!Acting}). [jobs] (default 1) runs the faulted
    re-runs on that many domains; the report is identical for every
    [jobs] value (indexed results, ordered merge — see {!Par}).
    @raise Failure if the baseline run does not terminate. *)

val quiescent : report -> bool
(** No wedged, broken or livelocked runs — the strict, hio-style bar. *)

val corpus : (string * State.t) list
(** The sweepable {!Ch_corpus.Programs} (everything but [diverge], whose
    baseline never terminates), as initial states with their inputs. *)

val pp_verdict : Format.formatter -> verdict -> unit

val pp_report : Format.formatter -> report -> unit
(** One line of counts, then one line per non-benign point. *)
