type target = Acting | Tid of int | Named of string
type injection = { at_step : int; target : target; exn : exn }
type t = injection list

let kill ?(target = Acting) at_step =
  { at_step; target; exn = Hio.Io.Kill_thread }

let pp_target ppf = function
  | Acting -> Fmt.string ppf "acting"
  | Tid t -> Fmt.pf ppf "t%d" t
  | Named n -> Fmt.pf ppf "%S" n

let pp_injection ppf { at_step; target; exn } =
  Fmt.pf ppf "%s into %a at step %d" (Printexc.to_string exn) pp_target
    target at_step

let pp ppf plan =
  Fmt.pf ppf "[@[<hv>%a@]]" (Fmt.list ~sep:Fmt.semi pp_injection) plan
