(** Graphviz export of the reachable state space: every node is a program
    state (mod structural congruence), every edge one rule application of
    Figures 4/5. Useful for visualizing how an asynchronous exception's
    delivery points fan out — the §5.1 race is a pair of paths that
    separate at a (Receive) edge and never rejoin. *)

open Ch_semantics

val dot :
  ?config:Step.config ->
  ?max_states:int ->
  ?show_terms:bool ->
  State.t ->
  string
(** Render the reachable graph (bounded by [max_states], default 2000) in
    DOT syntax. Terminal states are shaped by kind (completion, deadlock,
    …); with [show_terms] each node carries the main thread's code instead
    of a numeric id. *)

val write : path:string -> string -> unit
(** Write the rendered graph to a file. *)
