open Ch_semantics

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let truncate n s = if String.length s <= n then s else String.sub s 0 n ^ "…"

let dot ?(config = Step.default_config) ?(max_states = 2_000)
    ?(show_terms = false) init =
  let ids : (string, int) Hashtbl.t = Hashtbl.create 256 in
  let nodes = Buffer.create 1024 and edges = Buffer.create 1024 in
  let queue = Queue.create () in
  let next_id = ref 0 in
  let id_of state =
    let key = State.canonical_key state in
    match Hashtbl.find_opt ids key with
    | Some id -> (id, false)
    | None ->
        let id = !next_id in
        incr next_id;
        Hashtbl.add ids key id;
        (id, true)
  in
  let node_decl id state transitions =
    let shape, color =
      if transitions <> [] then ("ellipse", "black")
      else
        match State.main_result state with
        | Some (State.Done _) -> ("doublecircle", "darkgreen")
        | Some (State.Threw _) -> ("doubleoctagon", "firebrick")
        | None -> ("octagon", "orange") (* deadlock / wedged / divergent *)
    in
    let label =
      if show_terms then
        match State.thread state state.State.main with
        | Some (State.Active (m, _)) ->
            truncate 60 (Ch_lang.Pretty.term_to_string m)
        | Some (State.Finished (State.Done v)) ->
            "⊙ " ^ truncate 40 (Ch_lang.Pretty.term_to_string v)
        | Some (State.Finished (State.Threw e)) -> "⊙ #" ^ e
        | None -> "?"
      else string_of_int id
    in
    Buffer.add_string nodes
      (Printf.sprintf "  n%d [label=\"%s\", shape=%s, color=%s];\n" id
         (escape label) shape color)
  in
  let s0, _ = id_of init in
  Queue.add (init, s0) queue;
  let truncated = ref false in
  while not (Queue.is_empty queue) do
    let state, id = Queue.pop queue in
    let transitions = Step.enumerate ~config state in
    node_decl id state transitions;
    List.iter
      (fun (t : Step.transition) ->
        let target_id, fresh = id_of t.Step.next in
        if fresh then
          if Hashtbl.length ids > max_states then truncated := true
          else Queue.add (t.Step.next, target_id) queue;
        if Hashtbl.length ids <= max_states || not fresh then
          Buffer.add_string edges
            (Printf.sprintf "  n%d -> n%d [label=\"%s\"%s];\n" id target_id
               (escape (Step.rule_name t.Step.rule))
               (match t.Step.rule with
               | Step.R_receive | Step.R_interrupt -> ", color=firebrick"
               | Step.R_throw_to -> ", color=darkorange"
               | _ -> "")))
      transitions
  done;
  Printf.sprintf
    "digraph lts {\n  rankdir=TB;\n  node [fontsize=10];\n  edge [fontsize=8];\n%s%s%s}\n"
    (Buffer.contents nodes) (Buffer.contents edges)
    (if !truncated then "  trunc [label=\"(truncated)\", shape=plaintext];\n"
     else "")

let write ~path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc
