open Ch_semantics

type ending =
  | Returned of Ch_lang.Term.term
  | Uncaught of Ch_lang.Term.exn_name
  | Deadlocked
  | Diverged

type observation = { output : string; consumed : int; ending : ending }

(* A wedged (ill-typed) terminal is folded into [Diverged]: the checker is
   meant for well-typed programs, where the case does not arise. *)
let ending_of_kind = function
  | Space.Completed (State.Done v) -> Returned v
  | Space.Completed (State.Threw e) -> Uncaught e
  | Space.Deadlock -> Deadlocked
  | Space.Divergent | Space.Wedged _ -> Diverged

let observe ?(config = Step.default_config) ?max_states ?(input = "") program
    =
  let initial = State.initial ~input program in
  let result = Space.explore ~config ?max_states initial in
  let total_input = List.length initial.State.input in
  let observations =
    List.map
      (fun (t : Space.terminal) ->
        {
          output = State.output_string t.Space.state;
          consumed = total_input - List.length t.Space.state.State.input;
          ending = ending_of_kind t.Space.kind;
        })
      result.Space.terminals
  in
  (* incompleteness: a truncated exploration misses states; a cycle means
     infinite executions exist that produce no terminal observation *)
  ( List.sort_uniq compare observations,
    result.Space.truncated || result.Space.has_cycle )

let equivalent ?config ?max_states ?input p q =
  let obs_p, trunc_p = observe ?config ?max_states ?input p in
  let obs_q, trunc_q = observe ?config ?max_states ?input q in
  (not trunc_p) && (not trunc_q) && obs_p = obs_q

let refines ?config ?max_states ?input p q =
  let obs_p, trunc_p = observe ?config ?max_states ?input p in
  let obs_q, trunc_q = observe ?config ?max_states ?input q in
  (not trunc_p) && (not trunc_q)
  && List.for_all (fun o -> List.mem o obs_q) obs_p

(* [sub] appears in [super] as a (not necessarily contiguous)
   subsequence. *)
let is_subsequence sub super =
  let n = String.length sub and m = String.length super in
  let rec go i j =
    if i >= n then true
    else if j >= m then false
    else if sub.[i] = super.[j] then go (i + 1) (j + 1)
    else go i (j + 1)
  in
  go 0 0

let committed_to ?config ?max_states ?input q p =
  (* "q is committed to performing at least the operations of p": every
     operation sequence a non-divergent run of [p] exhibits is contained
     (as a subsequence of the output) in some run of [q]. *)
  let obs_p, trunc_p = observe ?config ?max_states ?input p in
  let obs_q, trunc_q = observe ?config ?max_states ?input q in
  (not trunc_p) && (not trunc_q)
  && List.for_all
       (fun op ->
         match op.ending with
         | Deadlocked | Diverged -> true
         | Returned _ | Uncaught _ ->
             List.exists (fun oq -> is_subsequence op.output oq.output) obs_q)
       obs_p

let pp_ending ppf = function
  | Returned v -> Fmt.pf ppf "returned %a" Ch_lang.Pretty.pp_term v
  | Uncaught e -> Fmt.pf ppf "uncaught #%s" e
  | Deadlocked -> Fmt.string ppf "deadlock"
  | Diverged -> Fmt.string ppf "divergence"

let pp_observation ppf o =
  Fmt.pf ppf "@[out=%S consumed=%d %a@]" o.output o.consumed pp_ending
    o.ending

let diff ?config ?max_states ?input p q =
  let obs_p, _ = observe ?config ?max_states ?input p in
  let obs_q, _ = observe ?config ?max_states ?input q in
  let only_p = List.filter (fun o -> not (List.mem o obs_q)) obs_p in
  let only_q = List.filter (fun o -> not (List.mem o obs_p)) obs_q in
  if only_p = [] && only_q = [] then None else Some (only_p, only_q)
