open Ch_semantics

type policy = First | Round_robin | Random of int
type outcome = Terminated | Out_of_steps

type run = {
  final : State.t;
  trace : Step.transition list;
  steps : int;
  outcome : outcome;
}

(* Round-robin: exception deliveries first (the paper's implementation
   checks the pending queue eagerly), then the first thread at or after the
   cursor that can step, then (Proc GC). *)
let round_robin_pick cursor transitions =
  let delivery =
    List.find_opt
      (fun t ->
        match t.Step.actor with
        | Step.Delivery _ -> true
        | Step.Thread_step _ | Step.Global -> false)
      transitions
  in
  match delivery with
  | Some t -> t
  | None -> (
      let threads =
        List.filter_map
          (fun t ->
            match t.Step.actor with
            | Step.Thread_step tid -> Some (tid, t)
            | Step.Delivery _ | Step.Global -> None)
          transitions
      in
      let at_or_after = List.filter (fun (tid, _) -> tid >= cursor) threads in
      match (at_or_after, threads, transitions) with
      | (_, t) :: _, _, _ -> t
      | [], (_, t) :: _, _ -> t
      | [], [], t :: _ -> t
      | [], [], [] -> assert false)

let run ?config ?intervene ?(max_steps = 20_000) policy init =
  let rng =
    match policy with
    | Random seed -> Some (Random.State.make [| seed |])
    | First | Round_robin -> None
  in
  let rec go state trace steps cursor =
    let state =
      match intervene with
      | None -> state
      | Some f -> ( match f ~step:steps state with Some s -> s | None -> state)
    in
    if steps >= max_steps then
      { final = state; trace = List.rev trace; steps; outcome = Out_of_steps }
    else
      match Step.enumerate ?config state with
      | [] ->
          { final = state; trace = List.rev trace; steps;
            outcome = Terminated }
      | transitions ->
          let chosen =
            match policy with
            | First -> List.hd transitions
            | Round_robin -> round_robin_pick cursor transitions
            | Random _ ->
                let rng = Option.get rng in
                List.nth transitions
                  (Random.State.int rng (List.length transitions))
          in
          let cursor' =
            match chosen.Step.actor with
            | Step.Thread_step tid -> tid + 1
            | Step.Delivery _ | Step.Global -> cursor
          in
          go chosen.Step.next (chosen :: trace) (steps + 1) cursor'
  in
  go init [] 0 0

let pp_transition ppf (t : Step.transition) =
  let actor =
    match t.Step.actor with
    | Step.Thread_step tid -> Printf.sprintf "t%d" tid
    | Step.Delivery k -> Printf.sprintf "⇐%d" k
    | Step.Global -> "·"
  in
  let label =
    match t.Step.label with
    | Some (Step.Out_char c) -> Printf.sprintf " !%C" c
    | Some (Step.In_char c) -> Printf.sprintf " ?%C" c
    | Some (Step.Time d) -> Printf.sprintf " $%d" d
    | None -> ""
  in
  Fmt.pf ppf "%-4s %-18s%s" actor (Step.rule_name t.Step.rule) label

let pp_trace ppf trace =
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list pp_transition) trace
