(** Observational equivalence and the commitment ordering (paper §11).

    The paper closes by sketching "two useful theories that arise from the
    semantics: a simple equational theory, and a more subtle theory based
    on a commitment ordering, where a process will approximate another if
    the latter is committed to performing at least the same operations as
    the former. … [this] would allow us to prove, for example, that
    [finally a b] is committed to performing the same operations as
    [block b]." This module makes both checkable for finite-state programs.

    An {e observation} of a closed program is everything its environment
    can see of one maximal execution: the characters written, the
    characters consumed, and how the run ended (main's value or uncaught
    exception, deadlock, divergence). {!observe} computes the {e set} of
    observations over all schedules by exhaustive exploration.

    Two programs are {e observationally equivalent} when their observation
    sets coincide; [p] {e refines} [q] when every observation of [p] is an
    observation of [q] (all of [p]'s behaviours are behaviours [q] already
    admits). Commitment — "q is committed to performing at least the
    operations of p" — is checked on the success observations: every
    output-prefix [p] can produce, [q] can extend to one of its own
    observations. These are whole-program (trace-style) notions, decidable
    here because exploration is exhaustive; they are coarser than a
    congruence but sound for the paper's examples, and the test suite uses
    them to verify the §11 laws. *)

open Ch_semantics

type ending =
  | Returned of Ch_lang.Term.term  (** main's value, normalized *)
  | Uncaught of Ch_lang.Term.exn_name
  | Deadlocked
  | Diverged  (** includes fuel exhaustion of the inner semantics *)

type observation = {
  output : string;  (** characters written, in order *)
  consumed : int;  (** how much of the input was read *)
  ending : ending;
}

val observe :
  ?config:Step.config ->
  ?max_states:int ->
  ?input:string ->
  Ch_lang.Term.term ->
  observation list * bool
(** All observations of the program over every schedule, sorted and
    deduplicated, paired with an incompleteness flag: [true] when the state
    bound was hit {e or} the state graph contains a cycle (the program has
    infinite executions, whose non-observations the set cannot include).
    {!equivalent}, {!refines} and {!committed_to} all answer [false] when
    either side is incomplete. *)

val equivalent :
  ?config:Step.config ->
  ?max_states:int ->
  ?input:string ->
  Ch_lang.Term.term ->
  Ch_lang.Term.term ->
  bool
(** Equal observation sets. Meaningless if either side truncates — the
    checker treats truncation as inequivalence. *)

val refines :
  ?config:Step.config ->
  ?max_states:int ->
  ?input:string ->
  Ch_lang.Term.term ->
  Ch_lang.Term.term ->
  bool
(** [refines p q]: every observation of [p] is one of [q]. *)

val committed_to :
  ?config:Step.config ->
  ?max_states:int ->
  ?input:string ->
  Ch_lang.Term.term ->
  Ch_lang.Term.term ->
  bool
(** [committed_to q p] (read: "[q] is committed to performing at least the
    operations of [p]"): for every non-divergent observation of [p], [q]
    has an observation whose output contains it as a subsequence. The §11
    example [committed_to (finally a b) (block b)] holds: whatever
    [finally a b] does, it performs [b]'s operations. *)

val pp_observation : Format.formatter -> observation -> unit

val diff :
  ?config:Step.config ->
  ?max_states:int ->
  ?input:string ->
  Ch_lang.Term.term ->
  Ch_lang.Term.term ->
  (observation list * observation list) option
(** [None] if equivalent; otherwise the observations unique to each side —
    for test failure messages. *)
