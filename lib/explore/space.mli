(** Exhaustive state-space exploration: the executable counterpart of the
    paper's semantics used to {e prove} its claims about races.

    The checker performs a breadth-first search over the quotient of program
    states by structural congruence and α-equivalence (via
    {!Ch_semantics.State.canonical_key}), following {e every} transition of
    Figures 4 and 5 — in particular every possible delivery point of every
    asynchronous exception. A claim like "this locking protocol never loses
    the lock" (paper §5.1–5.2) is checked over all schedules, which no
    concrete run of a real runtime could establish. *)

open Ch_semantics

type terminal_kind =
  | Completed of State.finished  (** only the main thread remains, finished *)
  | Deadlock  (** active threads remain, all waiting on resources *)
  | Divergent  (** a thread's redex exhausted the inner semantics' fuel *)
  | Wedged of string  (** an ill-typed evaluation site was reached *)

type terminal = {
  state : State.t;
  kind : terminal_kind;
  path : Step.transition list;  (** a witness path from the initial state *)
}

type result = {
  visited : int;  (** distinct states (mod congruence) explored *)
  edges : int;  (** transitions followed *)
  terminals : terminal list;
  truncated : bool;  (** hit [max_states]: results are a lower bound *)
  watch_hits : terminal list;
      (** states satisfying the [watch] predicate, with witness paths *)
  has_cycle : bool;
      (** some transition re-enters an already-visited state: the program
          has infinite executions (e.g. a spinning thread), which produce
          no terminal — consumers like {!Equiv} must account for them *)
}

val explore :
  ?config:Step.config ->
  ?max_states:int ->
  ?jobs:int ->
  ?watch:(State.t -> bool) ->
  State.t ->
  result
(** Breadth-first exploration from the initial state (default [max_states]
    is [200_000]). [watch] collects non-terminal witness states, e.g. "the
    thread died while the MVar is empty".

    [jobs] (default 1) expands BFS levels across that many domains: each
    round the frontier is snapshotted, every state's transitions and
    successor canonical keys are computed in parallel (the pure,
    expensive part), and the merge into the visited set runs
    sequentially in frontier order — so ids, witness paths, terminal
    order and truncation are byte-identical to the sequential search for
    every [jobs] value. *)

val terminal_kinds : result -> terminal_kind list
(** The distinct terminal kinds, deduplicated, for concise assertions. *)

val pp_terminal_kind : Format.formatter -> terminal_kind -> unit
val pp_summary : Format.formatter -> result -> unit
