(** Schedulers: resolve the nondeterminism of {!Ch_semantics.Step.enumerate}
    by picking one transition per step, yielding a single execution.

    These play the role of the paper's (unspecified) runtime scheduler; the
    model checker in {!Space} instead follows every choice. *)

open Ch_semantics

type policy =
  | First  (** always the first enabled transition: depth-first-ish, biased *)
  | Round_robin
      (** deliveries of pending exceptions first (as in the paper's
          implementation sketch, §8), then threads in cyclic order *)
  | Random of int  (** uniform among enabled transitions, seeded *)

type outcome =
  | Terminated  (** no transition enabled: finished, deadlocked or wedged *)
  | Out_of_steps  (** the [max_steps] bound hit *)

type run = {
  final : State.t;
  trace : Step.transition list;  (** oldest first *)
  steps : int;
  outcome : outcome;
}

val run :
  ?config:Step.config ->
  ?intervene:(step:int -> State.t -> State.t option) ->
  ?max_steps:int ->
  policy ->
  State.t ->
  run
(** Run a program state to termination (or to [max_steps], default
    [20_000]).

    [intervene] is consulted before each step with the step index and the
    current state; returning [Some st'] substitutes [st'] (returning
    [None] leaves the state alone). The fault-injection sweep uses it to
    drop a [KillThread] into {!State.t.inflight} at a chosen step —
    delivery then happens through the ordinary (Receive)/(Interrupt)
    rules, exactly as a real [throwTo] would. *)

val pp_trace : Format.formatter -> Step.transition list -> unit
(** One line per step: rule name, acting thread, label. *)
