open Ch_semantics

type terminal_kind =
  | Completed of State.finished
  | Deadlock
  | Divergent
  | Wedged of string

type terminal = {
  state : State.t;
  kind : terminal_kind;
  path : Step.transition list;
}

type result = {
  visited : int;
  edges : int;
  terminals : terminal list;
  truncated : bool;
  watch_hits : terminal list;
  has_cycle : bool;
}

let classify config (st : State.t) =
  let stalls =
    List.filter_map
      (fun (tid, th) ->
        match th with
        | State.Active _ -> Step.thread_stall config st tid
        | State.Finished _ -> None)
      st.State.threads
  in
  let any_active =
    List.exists
      (fun (_, th) ->
        match th with State.Active _ -> true | State.Finished _ -> false)
      st.State.threads
  in
  if not any_active then
    match State.main_result st with
    | Some (State.Done v) -> (
        (* Normalize the recorded result with the inner semantics so that
           observably equal outcomes (e.g. [0 + 1] and [1]) coincide. *)
        match Ch_pure.Eval.eval ~fuel:config.Step.fuel v with
        | Ch_pure.Eval.Value v' -> Completed (State.Done v')
        | Raised _ | Diverged | Stuck _ -> Completed (State.Done v))
    | Some (State.Threw e) -> Completed (State.Threw e)
    | None -> Wedged "main thread vanished"
  else
    let wedged =
      List.find_map
        (function Step.Ill_typed m -> Some m | _ -> None)
        stalls
    in
    match wedged with
    | Some m -> Wedged m
    | None ->
        if List.mem Step.Diverging stalls then Divergent else Deadlock

let explore ?(config = Step.default_config) ?(max_states = 200_000) ?watch
    init =
  let visited : (string, int) Hashtbl.t = Hashtbl.create 1024 in
  let adjacency : (int, int list) Hashtbl.t = Hashtbl.create 1024 in
  let next_id = ref 0 in
  (* parent edges for witness-path reconstruction *)
  let parent : (string, string * Step.transition) Hashtbl.t =
    Hashtbl.create 1024
  in
  let queue = Queue.create () in
  let terminals = ref [] and watch_hits = ref [] in
  let edges = ref 0 and truncated = ref false in
  let path_to key =
    let rec go key acc =
      match Hashtbl.find_opt parent key with
      | Some (parent_key, t) -> go parent_key (t :: acc)
      | None -> acc
    in
    go key []
  in
  let init_key = State.canonical_key init in
  Hashtbl.add visited init_key !next_id;
  incr next_id;
  Queue.add (init, init_key) queue;
  while not (Queue.is_empty queue) do
    let state, key = Queue.pop queue in
    (match watch with
    | Some pred when pred state ->
        watch_hits :=
          { state; kind = classify config state; path = path_to key }
          :: !watch_hits
    | Some _ | None -> ());
    let my_id = Hashtbl.find visited key in
    match Step.enumerate ~config state with
    | [] ->
        terminals :=
          { state; kind = classify config state; path = path_to key }
          :: !terminals
    | transitions ->
        let successors = ref [] in
        List.iter
          (fun (t : Step.transition) ->
            incr edges;
            let next_key = State.canonical_key t.Step.next in
            match Hashtbl.find_opt visited next_key with
            | Some id -> successors := id :: !successors
            | None ->
                if Hashtbl.length visited >= max_states then truncated := true
                else begin
                  Hashtbl.add visited next_key !next_id;
                  successors := !next_id :: !successors;
                  incr next_id;
                  Hashtbl.add parent next_key (key, t);
                  Queue.add (t.Step.next, next_key) queue
                end)
          transitions;
        Hashtbl.replace adjacency my_id !successors
  done;
  (* Cycle detection: iterative three-colour DFS over the collected graph.
     A back edge means some execution never terminates. *)
  let has_cycle =
    let colour : (int, [ `Grey | `Black ]) Hashtbl.t =
      Hashtbl.create (Hashtbl.length adjacency)
    in
    let found = ref false in
    let rec visit stack =
      match stack with
      | [] -> ()
      | `Enter node :: rest -> (
          match Hashtbl.find_opt colour node with
          | Some _ -> visit rest
          | None ->
              Hashtbl.add colour node `Grey;
              let succs =
                Option.value (Hashtbl.find_opt adjacency node) ~default:[]
              in
              let pushes =
                List.filter_map
                  (fun s ->
                    match Hashtbl.find_opt colour s with
                    | Some `Grey ->
                        found := true;
                        None
                    | Some `Black -> None
                    | None -> Some (`Enter s))
                  succs
              in
              visit (pushes @ (`Exit node :: rest)))
      | `Exit node :: rest ->
          Hashtbl.replace colour node `Black;
          visit rest
    in
    visit [ `Enter 0 ];
    !found
  in
  {
    visited = Hashtbl.length visited;
    edges = !edges;
    terminals = List.rev !terminals;
    truncated = !truncated;
    watch_hits = List.rev !watch_hits;
    has_cycle;
  }

let terminal_kinds result =
  List.sort_uniq compare (List.map (fun t -> t.kind) result.terminals)

let pp_terminal_kind ppf = function
  | Completed (State.Done v) ->
      Fmt.pf ppf "completed(%s)" (Ch_lang.Pretty.term_to_string v)
  | Completed (State.Threw e) -> Fmt.pf ppf "uncaught(#%s)" e
  | Deadlock -> Fmt.string ppf "deadlock"
  | Divergent -> Fmt.string ppf "divergent"
  | Wedged m -> Fmt.pf ppf "wedged(%s)" m

let pp_summary ppf result =
  Fmt.pf ppf "@[<v>states=%d edges=%d%s%s@,terminals: %a@]" result.visited
    result.edges
    (if result.truncated then " (truncated)" else "")
    (if result.has_cycle then " (has cycles: infinite executions exist)"
     else "")
    Fmt.(list ~sep:comma pp_terminal_kind)
    (terminal_kinds result)
