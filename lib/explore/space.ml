open Ch_semantics

type terminal_kind =
  | Completed of State.finished
  | Deadlock
  | Divergent
  | Wedged of string

type terminal = {
  state : State.t;
  kind : terminal_kind;
  path : Step.transition list;
}

type result = {
  visited : int;
  edges : int;
  terminals : terminal list;
  truncated : bool;
  watch_hits : terminal list;
  has_cycle : bool;
}

let classify config (st : State.t) =
  let stalls =
    List.filter_map
      (fun (tid, th) ->
        match th with
        | State.Active _ -> Step.thread_stall config st tid
        | State.Finished _ -> None)
      st.State.threads
  in
  let any_active =
    List.exists
      (fun (_, th) ->
        match th with State.Active _ -> true | State.Finished _ -> false)
      st.State.threads
  in
  if not any_active then
    match State.main_result st with
    | Some (State.Done v) -> (
        (* Normalize the recorded result with the inner semantics so that
           observably equal outcomes (e.g. [0 + 1] and [1]) coincide. *)
        match Ch_pure.Eval.eval ~fuel:config.Step.fuel v with
        | Ch_pure.Eval.Value v' -> Completed (State.Done v')
        | Raised _ | Diverged | Stuck _ -> Completed (State.Done v))
    | Some (State.Threw e) -> Completed (State.Threw e)
    | None -> Wedged "main thread vanished"
  else
    let wedged =
      List.find_map
        (function Step.Ill_typed m -> Some m | _ -> None)
        stalls
    in
    match wedged with
    | Some m -> Wedged m
    | None ->
        if List.mem Step.Diverging stalls then Divergent else Deadlock

let explore ?(config = Step.default_config) ?(max_states = 200_000)
    ?(jobs = 1) ?watch init =
  let visited : (string, int) Hashtbl.t = Hashtbl.create 1024 in
  let adjacency : (int, int list) Hashtbl.t = Hashtbl.create 1024 in
  let next_id = ref 0 in
  (* parent edges for witness-path reconstruction *)
  let parent : (string, string * Step.transition) Hashtbl.t =
    Hashtbl.create 1024
  in
  let terminals = ref [] and watch_hits = ref [] in
  let edges = ref 0 and truncated = ref false in
  let path_to key =
    let rec go key acc =
      match Hashtbl.find_opt parent key with
      | Some (parent_key, t) -> go parent_key (t :: acc)
      | None -> acc
    in
    go key []
  in
  (* The BFS is level-synchronous: each round snapshots the frontier (the
     FIFO queue's contents, in discovery order), expands every state —
     [Step.enumerate] plus the successors' [canonical_key]s, the pure and
     expensive part — and then merges sequentially {e in frontier order},
     doing exactly the Hashtbl reads/writes the plain FIFO loop would do.
     New states are appended in the same order a queue would append them,
     so visited ids, parent edges, adjacency, terminal order, watch hits
     and truncation are all byte-identical to the sequential search.
     With [jobs > 1] the expansion step is farmed to a domain pool;
     nothing else changes, so the result cannot depend on [jobs]. *)
  let pool = if jobs > 1 then Some (Par.Pool.create jobs) else None in
  Fun.protect ~finally:(fun () -> Option.iter Par.Pool.shutdown pool)
  @@ fun () ->
  let init_key = State.canonical_key init in
  Hashtbl.add visited init_key !next_id;
  incr next_id;
  let frontier = ref [ (init, init_key) ] in
  let expand (state, _key) =
    List.map
      (fun (t : Step.transition) -> (t, State.canonical_key t.Step.next))
      (Step.enumerate ~config state)
  in
  while !frontier <> [] do
    let batch = Array.of_list !frontier in
    frontier := [];
    let expansions =
      match pool with
      | None -> Array.map expand batch
      | Some pool -> Par.Pool.map pool expand batch
    in
    let additions = ref [] in
    Array.iteri
      (fun i (state, key) ->
        (match watch with
        | Some pred when pred state ->
            watch_hits :=
              { state; kind = classify config state; path = path_to key }
              :: !watch_hits
        | Some _ | None -> ());
        let my_id = Hashtbl.find visited key in
        match expansions.(i) with
        | [] ->
            terminals :=
              { state; kind = classify config state; path = path_to key }
              :: !terminals
        | transitions ->
            let successors = ref [] in
            List.iter
              (fun ((t : Step.transition), next_key) ->
                incr edges;
                match Hashtbl.find_opt visited next_key with
                | Some id -> successors := id :: !successors
                | None ->
                    if Hashtbl.length visited >= max_states then
                      truncated := true
                    else begin
                      Hashtbl.add visited next_key !next_id;
                      successors := !next_id :: !successors;
                      incr next_id;
                      Hashtbl.add parent next_key (key, t);
                      additions := (t.Step.next, next_key) :: !additions
                    end)
              transitions;
            Hashtbl.replace adjacency my_id !successors)
      batch;
    frontier := List.rev !additions
  done;
  (* Cycle detection: iterative three-colour DFS over the collected graph.
     A back edge means some execution never terminates. *)
  let has_cycle =
    let colour : (int, [ `Grey | `Black ]) Hashtbl.t =
      Hashtbl.create (Hashtbl.length adjacency)
    in
    let found = ref false in
    let rec visit stack =
      match stack with
      | [] -> ()
      | `Enter node :: rest -> (
          match Hashtbl.find_opt colour node with
          | Some _ -> visit rest
          | None ->
              Hashtbl.add colour node `Grey;
              let succs =
                Option.value (Hashtbl.find_opt adjacency node) ~default:[]
              in
              let pushes =
                List.filter_map
                  (fun s ->
                    match Hashtbl.find_opt colour s with
                    | Some `Grey ->
                        found := true;
                        None
                    | Some `Black -> None
                    | None -> Some (`Enter s))
                  succs
              in
              visit (pushes @ (`Exit node :: rest)))
      | `Exit node :: rest ->
          Hashtbl.replace colour node `Black;
          visit rest
    in
    visit [ `Enter 0 ];
    !found
  in
  {
    visited = Hashtbl.length visited;
    edges = !edges;
    terminals = List.rev !terminals;
    truncated = !truncated;
    watch_hits = List.rev !watch_hits;
    has_cycle;
  }

let terminal_kinds result =
  List.sort_uniq compare (List.map (fun t -> t.kind) result.terminals)

let pp_terminal_kind ppf = function
  | Completed (State.Done v) ->
      Fmt.pf ppf "completed(%s)" (Ch_lang.Pretty.term_to_string v)
  | Completed (State.Threw e) -> Fmt.pf ppf "uncaught(#%s)" e
  | Deadlock -> Fmt.string ppf "deadlock"
  | Divergent -> Fmt.string ppf "divergent"
  | Wedged m -> Fmt.pf ppf "wedged(%s)" m

let pp_summary ppf result =
  Fmt.pf ppf "@[<v>states=%d edges=%d%s%s@,terminals: %a@]" result.visited
    result.edges
    (if result.truncated then " (truncated)" else "")
    (if result.has_cycle then " (has cycles: infinite executions exist)"
     else "")
    Fmt.(list ~sep:comma pp_terminal_kind)
    (terminal_kinds result)
