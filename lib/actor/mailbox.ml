open Hio
open Hio_std
open Io

type 'a t = {
  q : 'a Chan.t;
  mutable stash : 'a list;  (* arrival order; owner-thread only *)
  bound : int option;
  mutable len : int;  (* queued + stashed, i.e. pushed minus consumed *)
  mutable hw : int;  (* high-water mark of [len] *)
  mutable dropped : int;  (* pushes shed by the bound *)
  on_drop : ('a -> unit) option;
  g_depth : Obs.Metrics.gauge option;
}

let create ?bound ?on_drop ?metrics ?(name = "mailbox") () =
  Chan.create () >>= fun q ->
  lift (fun () ->
      let g_depth =
        match metrics with
        | None -> None
        | Some reg ->
            Some
              (Obs.Metrics.gauge reg
                 ~labels:[ ("name", name) ]
                 "mailbox_depth")
      in
      { q; stash = []; bound; len = 0; hw = 0; dropped = 0; on_drop; g_depth })

(* Both run inside a [lift] of the pusher/owner. *)
let bump t =
  t.len <- t.len + 1;
  if t.len > t.hw then t.hw <- t.len;
  match t.g_depth with Some g -> Obs.Metrics.set g t.len | None -> ()

let consumed t =
  t.len <- t.len - 1;
  match t.g_depth with Some g -> Obs.Metrics.set g t.len | None -> ()

(* Masked so a kill cannot separate the depth accounting from the send
   itself; [Chan.send] on an unbounded channel never blocks, so there is
   no interruptible point inside the mask. *)
let push t m =
  mask_
    ( lift (fun () ->
          match t.bound with
          | Some b when t.len >= b ->
              (* Shed-newest: the arrival is dropped, the queue keeps its
                 older (closer-to-service) messages. Deterministic — the
                 decision depends only on mailbox state at this step. *)
              t.dropped <- t.dropped + 1;
              (match t.on_drop with Some f -> f m | None -> ());
              false
          | _ ->
              bump t;
              true)
    >>= function
    | false -> return ()
    | true -> Chan.send t.q m )

(* Control-plane push: counted in the depth but never shed — dropping a
   stop request or a monitor's one [down] would break their
   exactly-once/liveness contracts, and they are not amplified by load
   the way data messages are. *)
let push_urgent t m =
  mask_ (lift (fun () -> bump t) >>= fun () -> Chan.send t.q m)

let stashed t = lift (fun () -> List.length t.stash)
let length t = lift (fun () -> t.len)
let high_water t = lift (fun () -> t.hw)
let dropped_count t = lift (fun () -> t.dropped)

(* One atomic step: scan the stash in arrival order for the first match
   and remove it. *)
let take_stash t f =
  lift (fun () ->
      let rec go acc = function
        | [] -> None
        | m :: rest -> (
            match f m with
            | Some x ->
                t.stash <- List.rev_append acc rest;
                consumed t;
                Some x
            | None -> go (m :: acc) rest)
      in
      go [] t.stash)

(* The receive loop proper. Runs masked by the callers below: between
   [Chan.recv] handing us a message and the match/stash decision there
   is no delivery point, so a kill cannot strand a taken message.
   Messages parked in the stash stay counted in [len] — they are still
   in the mailbox. *)
let rec recv_match t f =
  Chan.recv t.q >>= fun m ->
  match f m with
  | Some x -> lift (fun () -> consumed t) >>= fun () -> return x
  | None -> lift (fun () -> t.stash <- t.stash @ [ m ]) >>= fun () ->
      recv_match t f

let receive t f =
  mask_
    ( take_stash t f >>= function
      | Some x -> return x
      | None -> recv_match t f )

(* Same loop with a deadline. The timer is armed in this thread — a
   forked [Combinators.timeout] child would be the one blocked in
   [Chan.recv], and killing it on expiry could lose the message it just
   took. Here expiry is a [Timer_signal] delivered to us at the
   interruptible [Chan.recv] wait: either we already hold a message
   (signal arrives at a later wait, or is purged by [cancel_timer]) or
   we hold nothing. Either way no message is in limbo. *)
let receive_timeout d t f =
  mask_
    ( arm_timer d >>= fun tm ->
      catch
        ( (take_stash t f >>= function
           | Some x -> return x
           | None -> recv_match t f)
          >>= fun x ->
          cancel_timer tm >>= fun () -> return (Some x) )
        (fun e ->
          if is_timer_signal tm e then return None
          else cancel_timer tm >>= fun () -> throw e) )

let next t = receive t (fun m -> Some m)
