open Hio
open Hio_std
open Io

type 'a t = {
  q : 'a Chan.t;
  mutable stash : 'a list;  (* arrival order; owner-thread only *)
}

let create () = Chan.create () >>= fun q -> return { q; stash = [] }
let push t m = Chan.send t.q m
let stashed t = lift (fun () -> List.length t.stash)

(* One atomic step: scan the stash in arrival order for the first match
   and remove it. *)
let take_stash t f =
  lift (fun () ->
      let rec go acc = function
        | [] -> None
        | m :: rest -> (
            match f m with
            | Some x ->
                t.stash <- List.rev_append acc rest;
                Some x
            | None -> go (m :: acc) rest)
      in
      go [] t.stash)

(* The receive loop proper. Runs masked by the callers below: between
   [Chan.recv] handing us a message and the match/stash decision there
   is no delivery point, so a kill cannot strand a taken message. *)
let rec recv_match t f =
  Chan.recv t.q >>= fun m ->
  match f m with
  | Some x -> return x
  | None -> lift (fun () -> t.stash <- t.stash @ [ m ]) >>= fun () ->
      recv_match t f

let receive t f =
  mask_
    ( take_stash t f >>= function
      | Some x -> return x
      | None -> recv_match t f )

(* Same loop with a deadline. The timer is armed in this thread — a
   forked [Combinators.timeout] child would be the one blocked in
   [Chan.recv], and killing it on expiry could lose the message it just
   took. Here expiry is a [Timer_signal] delivered to us at the
   interruptible [Chan.recv] wait: either we already hold a message
   (signal arrives at a later wait, or is purged by [cancel_timer]) or
   we hold nothing. Either way no message is in limbo. *)
let receive_timeout d t f =
  mask_
    ( arm_timer d >>= fun tm ->
      catch
        ( (take_stash t f >>= function
           | Some x -> return x
           | None -> recv_match t f)
          >>= fun x ->
          cancel_timer tm >>= fun () -> return (Some x) )
        (fun e ->
          if is_timer_signal tm e then return None
          else cancel_timer tm >>= fun () -> throw e) )

let next t = receive t (fun m -> Some m)
