open Hio
open Hio_std
open Io

type down = {
  down_id : int;
  down_name : string;
  down_reason : (unit, exn) Stdlib.result;
}

exception Exit_signal of { aid : int; name : string; reason : exn }
exception Stopped
exception Call_timeout

(* The control envelope around user messages. A stop request rides the
   mailbox FIFO — the same discipline as Sup's ctl channel — so it is
   processed strictly after everything already enqueued. *)
type 'm envelope = Msg of 'm | Stop_req of (unit, exn) Stdlib.result Mvar.t

(* The type-erased identity of an actor: everything links, monitors and
   the exit protocol need, free of the message type so cells of
   different actors can point at each other. All mutable fields are
   touched only inside atomic [lift] steps. *)
type cell = {
  c_id : int;
  c_name : string;
  mutable c_tid : Io.thread_id option;  (* current incarnation *)
  mutable c_alive : bool;
  mutable c_ever_done : (unit, exn) Stdlib.result option;  (* first exit *)
  mutable c_links : cell list;
  mutable c_watchers : watcher list;
  mutable c_stop_acks : (unit, exn) Stdlib.result Mvar.t list;
  c_done : (unit, exn) Stdlib.result Mvar.t;
}

and watcher = {
  w_on : cell;
  mutable w_active : bool;
  w_deliver : down -> unit Io.t;  (* a Mailbox.push closure: never blocks *)
}

type monitor_ref = watcher
type 'm t = { a_cell : cell; a_mbox : 'm envelope Mailbox.t }
type 'r reply = ('r, exn) Stdlib.result Mvar.t

let rec iter f = function
  | [] -> return ()
  | x :: rest -> f x >>= fun () -> iter f rest

let () =
  Printexc.register_printer (function
    | Exit_signal { aid; name; reason } ->
        Some
          (Printf.sprintf "Exit_signal(%s#%d: %s)" name aid
             (Printexc.to_string reason))
    | Stopped -> Some "Actor.Stopped"
    | Call_timeout -> Some "Actor.Call_timeout"
    | _ -> None)

(* --- lifecycle --------------------------------------------------------- *)

let create ?(name = "actor") ?bound ?on_drop ?metrics () =
  (* The bound applies to [Msg] envelopes; control envelopes use
     [push_urgent]. [on_drop] unwraps, so callers account in their own
     message type. *)
  let on_drop =
    Option.map
      (fun f -> function Msg m -> f m | Stop_req _ -> ())
      on_drop
  in
  Mailbox.create ?bound ?on_drop ?metrics ~name () >>= fun mbox ->
  Mvar.new_empty >>= fun done_mv ->
  (* The id comes from the MVar's per-run id, not a global counter: a
     module-level counter would be shared across the sweep's parallel
     re-runs and make anything derived from ids schedule-dependent
     (the PR 4 gensym lesson). *)
  return
    {
      a_cell =
        {
          c_id = Mvar.id done_mv;
          c_name = name;
          c_tid = None;
          c_alive = false;
          c_ever_done = None;
          c_links = [];
          c_watchers = [];
          c_stop_acks = [];
          c_done = done_mv;
        };
      a_mbox = mbox;
    }

(* The exit protocol. Runs under [uninterruptibly]: a second kill aimed
   at the dying actor must not cut the delivery fan-out short, or a
   monitor could lose its one [down]. The bookkeeping is one atomic
   step — after it, the actor is observably dead and every link/monitor
   is claimed by this incarnation's protocol, so delivery happens
   exactly once no matter how many exceptions are in flight. *)
let exit_protocol cell res =
  uninterruptibly
    ( lift (fun () ->
          cell.c_alive <- false;
          cell.c_tid <- None;
          (match cell.c_ever_done with
          | None -> cell.c_ever_done <- Some res
          | Some _ -> ());
          let links = cell.c_links in
          (* sever both directions so a peer dying later doesn't signal
             this corpse, and vice versa *)
          List.iter
            (fun p -> p.c_links <- List.filter (fun c -> c != cell) p.c_links)
            links;
          cell.c_links <- [];
          let ws = List.filter (fun w -> w.w_active) cell.c_watchers in
          List.iter (fun w -> w.w_active <- false) ws;
          cell.c_watchers <- [];
          let acks = cell.c_stop_acks in
          cell.c_stop_acks <- [];
          (links, ws, acks))
      >>= fun (links, ws, acks) ->
      (match res with
      | Stdlib.Ok () -> return ()  (* normal exit: links are silent *)
      | Stdlib.Error reason ->
          iter
            (fun peer ->
              match (peer.c_alive, peer.c_tid) with
              | true, Some tid ->
                  throw_to tid
                    (Exit_signal
                       { aid = cell.c_id; name = cell.c_name; reason })
              | _ -> return ())
            links)
      >>= fun () ->
      iter
        (fun w ->
          w.w_deliver
            { down_id = cell.c_id; down_name = cell.c_name; down_reason = res })
        ws
      >>= fun () ->
      iter (fun mv -> Mvar.try_put mv res >>= fun _ -> return ()) acks
      >>= fun () ->
      Mvar.try_put cell.c_done res >>= fun _ -> return () )

let body t f =
  (* Masked for the whole body, like a supervisor: asynchronous
     exceptions (kills, link signals) land only at the interruptible
     [receive] waits, never between a state update and its send. *)
  mask_
    ( my_thread_id >>= fun me ->
      lift (fun () ->
          t.a_cell.c_tid <- Some me;
          t.a_cell.c_alive <- true)
      >>= fun () ->
      catch
        (f t >>= fun () -> return (Stdlib.Ok ()))
        (fun e ->
          return
            (match e with Stopped -> Stdlib.Ok () | e -> Stdlib.Error e))
      >>= fun res -> exit_protocol t.a_cell res )

let fork_body t f =
  block
    ( fork ~name:t.a_cell.c_name (body t f) >>= fun tid ->
      lift (fun () ->
          t.a_cell.c_tid <- Some tid;
          t.a_cell.c_alive <- true) )

let spawn ?name f = create ?name () >>= fun t -> fork_body t f >>= fun () -> return t

let spawn_link ~parent ?name f =
  create ?name () >>= fun t ->
  block
    ( lift (fun () ->
          let cp = parent.a_cell and cc = t.a_cell in
          cp.c_links <- cc :: cp.c_links;
          cc.c_links <- cp :: cc.c_links)
      >>= fun () -> fork_body t f )
  >>= fun () -> return t

(* --- links and monitors ------------------------------------------------ *)

let dead c = (not c.c_alive) && c.c_ever_done <> None

(* Deliver the already-recorded abnormal death of [from] to [to_], for
   link/monitor operations that arrive after the fact. *)
let late_signal ~from ~to_ =
  lift (fun () ->
      match (from.c_ever_done, to_.c_alive, to_.c_tid) with
      | Some (Stdlib.Error reason), true, Some tid -> Some (tid, reason)
      | _ -> None)
  >>= function
  | Some (tid, reason) ->
      throw_to tid
        (Exit_signal { aid = from.c_id; name = from.c_name; reason })
  | None -> return ()

let link a b =
  let ca = a.a_cell and cb = b.a_cell in
  lift (fun () ->
      if dead ca || dead cb then `Late
      else begin
        if not (List.memq cb ca.c_links) then ca.c_links <- cb :: ca.c_links;
        if not (List.memq ca cb.c_links) then cb.c_links <- ca :: cb.c_links;
        `Linked
      end)
  >>= function
  | `Linked -> return ()
  | `Late ->
      (* Erlang's noproc convention, link flavour: an already-dead peer
         signals now (if its death was abnormal) *)
      late_signal ~from:ca ~to_:cb >>= fun () -> late_signal ~from:cb ~to_:ca

let unlink a b =
  lift (fun () ->
      let ca = a.a_cell and cb = b.a_cell in
      ca.c_links <- List.filter (fun c -> c != cb) ca.c_links;
      cb.c_links <- List.filter (fun c -> c != ca) cb.c_links)

(* Arm a watcher on a cell, or fire immediately if it is already dead.
   [deliver] is a mailbox push (or [reply_error] for calls): it never
   blocks, so the exit protocol's fan-out is wait-free. *)
let watch_cell cell deliver =
  let w = { w_on = cell; w_active = true; w_deliver = deliver } in
  lift (fun () ->
      match cell.c_ever_done with
      | Some res when not cell.c_alive ->
          w.w_active <- false;
          `Fire res
      | _ ->
          cell.c_watchers <- cell.c_watchers @ [ w ];
          `Armed)
  >>= function
  | `Armed -> return w
  | `Fire res ->
      deliver { down_id = cell.c_id; down_name = cell.c_name; down_reason = res }
      >>= fun () -> return w

let monitor ~watcher ~inject watched =
  watch_cell watched.a_cell (fun d ->
      Mailbox.push_urgent watcher.a_mbox (Msg (inject d)))

let demonitor w =
  lift (fun () ->
      w.w_active <- false;
      w.w_on.c_watchers <- List.filter (fun x -> x != w) w.w_on.c_watchers)

(* --- messaging --------------------------------------------------------- *)

let send t m = Mailbox.push t.a_mbox (Msg m)

(* Selective receive over the envelope stream. A consumed stop request
   is acknowledged from the exit protocol, not here: park the ack on the
   cell (we are masked — no delivery point between the take and this
   record) and raise [Stopped] so teardown runs on the normal exit
   path. *)
let receive t f =
  Mailbox.receive t.a_mbox (function
    | Stop_req ack -> Some (`Stop ack)
    | Msg m -> ( match f m with Some x -> Some (`Msg x) | None -> None))
  >>= function
  | `Msg x -> return x
  | `Stop ack ->
      lift (fun () -> t.a_cell.c_stop_acks <- ack :: t.a_cell.c_stop_acks)
      >>= fun () -> throw Stopped

let receive_timeout d t f =
  Mailbox.receive_timeout d t.a_mbox (function
    | Stop_req ack -> Some (`Stop ack)
    | Msg m -> ( match f m with Some x -> Some (`Msg x) | None -> None))
  >>= function
  | Some (`Msg x) -> return (Some x)
  | Some (`Stop ack) ->
      lift (fun () -> t.a_cell.c_stop_acks <- ack :: t.a_cell.c_stop_acks)
      >>= fun () -> throw Stopped
  | None -> return None

let reply r v = Mvar.try_put r (Stdlib.Ok v) >>= fun _ -> return ()
let reply_error r e = Mvar.try_put r (Stdlib.Error e) >>= fun _ -> return ()

let down_exn d =
  let reason =
    match d.down_reason with Stdlib.Ok () -> Stopped | Stdlib.Error e -> e
  in
  Exit_signal { aid = d.down_id; name = d.down_name; reason }

(* A synchronous call: reply MVar in the message, a monitor so a dying
   server fails us fast instead of leaving us waiting out the timeout,
   the timer armed in this thread (a timeout helper thread could be
   killed while holding the reply). The wait itself is the only
   interruptible point; the handler runs masked, so the timer token is
   always cancelled/purged before we leave. *)
let call ?timeout srv make =
  Mvar.new_empty >>= fun r ->
  watch_cell srv.a_cell (fun d -> reply_error r (down_exn d)) >>= fun w ->
  Combinators.finally
    ( Mailbox.push srv.a_mbox (Msg (make r)) >>= fun () ->
      let wait =
        Mvar.read r >>= function
        | Stdlib.Ok v -> return v
        | Stdlib.Error e -> throw e
      in
      match timeout with
      | None -> wait
      | Some d ->
          mask_
            ( arm_timer d >>= fun tm ->
              catch
                (wait >>= fun v -> cancel_timer tm >>= fun () -> return v)
                (fun e ->
                  if is_timer_signal tm e then throw Call_timeout
                  else cancel_timer tm >>= fun () -> throw e) ) )
    (demonitor w)

(* --- termination ------------------------------------------------------- *)

let await t = Mvar.read t.a_cell.c_done
let alive t = lift (fun () -> t.a_cell.c_alive)
let id t = t.a_cell.c_id
let name t = t.a_cell.c_name
let tid t = lift (fun () -> t.a_cell.c_tid)
let stashed t = Mailbox.stashed t.a_mbox

(* Graceful stop = the supervisor's teardown barrier on the mailbox
   FIFO: everything enqueued before the stop request is processed
   first. The wait races the ack against the actor's death record, so a
   victim killed between consuming the request and acking (or killed
   while we enqueue) cannot wedge the stopper. Weakness, documented in
   the mli: an actor that already died once (e.g. under a supervisor
   that restarted it) answers with that first recorded result
   immediately. *)
let stop t =
  lift (fun () ->
      match (t.a_cell.c_alive, t.a_cell.c_ever_done) with
      | false, Some r -> Some r
      | _ -> None)
  >>= function
  | Some r -> return r
  | None ->
      Mvar.new_empty >>= fun ack ->
      Mailbox.push_urgent t.a_mbox (Stop_req ack) >>= fun () ->
      Combinators.race [ Mvar.take ack; Mvar.read t.a_cell.c_done ]

let kill t =
  lift (fun () -> t.a_cell.c_tid) >>= function
  | Some tid when t.a_cell.c_alive ->
      catch (throw_to tid Kill_thread) (function
        | Thread_not_found -> return ()
        | e -> throw e)
  | _ -> return ()
