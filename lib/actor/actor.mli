(** Exception-linked actors: Erlang's process-linking discipline rebuilt
    on nothing but the paper's primitives. Failure propagation {e is}
    [throwTo] — a link delivers the peer's abnormal exit as an
    {!Exit_signal} asynchronous exception, cut through by the ordinary
    mask discipline (an actor blocked in {!receive} is at an
    interruptible §5.3 wait, so the signal lands there and nowhere
    else); a monitor turns the same event into a {!down} {e message} in
    the watcher's mailbox instead.

    An actor is a {!Mailbox} plus a {e cell} of link/monitor state. The
    body runs fully masked — like a {!Hsup.Sup} supervisor, it receives
    asynchronous exceptions only while waiting in {!receive} — and its
    termination runs an exit protocol under
    {!Hio.Io.uninterruptibly}: bookkeeping (deactivate monitors,
    snapshot and sever links, record the result) happens in one atomic
    step, then signals and [down] messages are delivered exactly once
    even if a second kill is already aimed at the dying actor.

    Restart-friendliness (the deliberate deviation from Erlang pids):
    the handle, its mailbox and any queued messages survive the body's
    death, so an actor body can run as a {!Hsup.Sup} child and a
    restarted incarnation resumes draining the same mailbox. Links and
    monitors are {e per-incarnation}: they fire at a death and are gone;
    re-arm them from the restarted body if desired. *)

open Hio

type 'm t
(** Handle to an actor with message type ['m]. *)

type down = {
  down_id : int;  (** {!id} of the actor that died *)
  down_name : string;
  down_reason : (unit, exn) Stdlib.result;
      (** [Ok ()]: normal return or graceful {!stop}; [Error e]: crash
          or kill. *)
}
(** What a monitor delivers (as a message, via its [inject]). *)

exception Exit_signal of { aid : int; name : string; reason : exn }
(** Thrown {e to} linked peers when an actor dies abnormally — this is
    the link mechanism, nothing more. [aid]/[name] identify the dead
    actor. *)

exception Stopped
(** Raised out of {!receive} inside the actor's own body when a
    {!stop} request is consumed; the body wrapper turns it into a
    normal ([Ok ()]) exit. Visible so a body's own [catch]-all can
    re-throw it. *)

exception Call_timeout
(** {!call} gave up waiting for the reply. *)

(* --- lifecycle --------------------------------------------------------- *)

val create :
  ?name:string ->
  ?bound:int ->
  ?on_drop:('m -> unit) ->
  ?metrics:Obs.Metrics.t ->
  unit ->
  'm t Io.t
(** A cell + mailbox with no thread yet; run the body via {!fork_body}
    (directly, or inside a {!Hsup.Sup.child}). [name] defaults to
    ["actor"] and is used for the fork name, {!Exit_signal}, {!down} and
    the mailbox's metrics label. [bound]/[on_drop]/[metrics] configure
    the mailbox ({!Mailbox.create}): a bounded mailbox sheds the newest
    message on overflow — [on_drop] sees only user messages ({!send}),
    never the control envelopes, which bypass the bound. *)

val body : 'm t -> ('m t -> unit Io.t) -> unit Io.t
(** The runnable body: masked, registers the current thread as the
    actor's incarnation, runs [f], then runs the exit protocol. Give
    this to {!Hsup.Sup.child} to supervise an actor. *)

val fork_body : 'm t -> ('m t -> unit Io.t) -> unit Io.t
(** Fork {!body} under [block] and record the thread id, so a kill
    cannot slip in between fork and registration. *)

val spawn : ?name:string -> ('m t -> unit Io.t) -> 'm t Io.t
(** [create] + {!fork_body}. *)

val spawn_link : parent:'p t -> ?name:string -> ('m t -> unit Io.t) -> 'm t Io.t
(** Spawn atomically linked to [parent] (link installed before the
    fork, under [block] — no window where either death goes
    unnoticed). *)

(* --- links and monitors ------------------------------------------------ *)

val link : 'a t -> 'b t -> unit Io.t
(** Bidirectional link: when either dies abnormally the survivor gets
    {!Exit_signal} via [throw_to]. Linking to an already-dead actor
    delivers immediately (if that death was abnormal). Idempotent. *)

val unlink : 'a t -> 'b t -> unit Io.t

type monitor_ref

val monitor : watcher:'w t -> inject:(down -> 'w) -> 'a t -> monitor_ref Io.t
(** One-shot monitor: when the watched actor dies (any reason), push
    [inject down] into [watcher]'s mailbox — exactly once. Monitoring an
    already-dead actor fires immediately (Erlang's [noproc]
    convention). *)

val demonitor : monitor_ref -> unit Io.t
(** Deactivate; a [down] not yet pushed will never be. Idempotent. *)

(* --- messaging --------------------------------------------------------- *)

val send : 'm t -> 'm -> unit Io.t
(** Cast: enqueue and return. Never blocks, never fails — a message to
    a dead (or never-started) actor just sits in the mailbox. *)

val receive : 'm t -> ('m -> 'a option) -> 'a Io.t
(** Selective receive on the actor's own mailbox ({!Mailbox.receive}).
    Consuming a {!stop} request raises {!Stopped}. Call only from the
    actor's own body. *)

val receive_timeout : int -> 'm t -> ('m -> 'a option) -> 'a option Io.t

type 'r reply
(** Write-once reply capability carried inside a call message. *)

val reply : 'r reply -> 'r -> unit Io.t
(** Fulfil a call. Idempotent; a late reply to a timed-out or dead
    caller is silently dropped. *)

val reply_error : 'r reply -> exn -> unit Io.t

val call : ?timeout:int -> 'm t -> ('r reply -> 'm) -> 'r Io.t
(** Synchronous request: [call srv make] sends [make r], waits for
    {!reply}. A monitor on [srv] fails the call fast with
    {!Exit_signal} if the server dies first (or is already dead);
    [?timeout] (virtual µs, timer wheel, same-thread arming) raises
    {!Call_timeout}. *)

(* --- termination ------------------------------------------------------- *)

val stop : 'm t -> (unit, exn) Stdlib.result Io.t
(** Graceful stop, reusing the supervisor's FIFO-mailbox teardown
    barrier: a stop request is enqueued {e behind} everything already in
    the mailbox, the body raises {!Stopped} when it consumes it, and
    [stop] returns when the actor acknowledged its own exit — so all
    earlier messages were handled first. Returns the actor's exit
    result; on an already-dead actor, that recorded result
    immediately. *)

val kill : 'm t -> unit Io.t
(** [throw_to] {!Hio.Io.Kill_thread} at the current incarnation, if
    any. The mailbox survives. *)

val await : 'm t -> (unit, exn) Stdlib.result Io.t
(** First recorded exit of this actor (a restarted actor keeps the
    first). *)

(* --- introspection ----------------------------------------------------- *)

val alive : 'm t -> bool Io.t
val id : 'm t -> int
(** Unique per run (derived from the done-MVar's id — deterministic
    under the sweep, unlike any global counter). *)

val name : 'm t -> string
val tid : 'm t -> Io.thread_id option Io.t

val stashed : 'm t -> int Io.t
(** Messages parked by selective receives (tests/metrics). *)
