(** A consistent-hash router actor: routes keyed messages to a fixed set
    of shard actors. The ring is built once (FNV-1a over
    ["name#vnode"], written out rather than [Hashtbl.hash] so placement
    is stable across OCaml versions — sweep schedules depend on it) and
    is immutable, so {!pick} is pure; the router {e actor} exists to be
    a kill target: routing through it serialises casts per key order,
    and killing it under the sweep must only delay delivery (the
    mailbox holds the backlog for the restarted incarnation). *)

open Hio

type 'm msg = Route of string * 'm
type 'm t

val create :
  ?name:string -> ?vnodes:int -> (string * 'm Actor.t) list -> 'm t Io.t
(** Build the ring over the named shards ([vnodes] per shard, default
    32) and the router's own actor cell — no thread yet. [name]
    defaults to ["router"]. *)

val body : 'm t -> unit Io.t
(** The dispatch loop as a runnable body (a {!Hsup.Sup.child}
    candidate): receive [Route (key, m)], forward [m] to the shard
    owning [key]. *)

val spawn : ?name:string -> ?vnodes:int -> (string * 'm Actor.t) list -> 'm t Io.t
(** {!create} + fork {!body}. *)

val route : 'm t -> string -> 'm -> unit Io.t
(** Cast through the router actor (never blocks). *)

val pick : 'm t -> string -> 'm Actor.t
(** The shard owning a key — pure ring lookup, no actor hop. Routing
    and [pick] always agree. *)

val actor : 'm t -> 'm msg Actor.t
(** The router's own actor (to kill, monitor, stop or supervise). *)

val stop : 'm t -> (unit, exn) Stdlib.result Io.t

val hash : string -> int
(** The ring's FNV-1a 32-bit hash (exposed for tests). *)
