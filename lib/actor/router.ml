open Hio
open Io

type 'm msg = Route of string * 'm

type 'm t = {
  r_actor : 'm msg Actor.t;
  r_ring : (int * 'm Actor.t) array;  (* sorted by point, immutable *)
}

(* FNV-1a, 32-bit. Written out (not Hashtbl.hash) so ring placement —
   and every sweep schedule downstream of it — is identical on every
   OCaml version and word size. *)
let hash s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xFFFFFFFF)
    s;
  !h

let build_ring vnodes shards =
  let points =
    List.concat_map
      (fun (name, a) ->
        List.init vnodes (fun v -> (hash (Printf.sprintf "%s#%d" name v), a)))
      shards
  in
  let arr = Array.of_list points in
  Array.sort (fun (h1, _) (h2, _) -> compare h1 h2) arr;
  arr

(* First ring point at or after the key's hash, wrapping. *)
let pick_ring ring key =
  let h = hash key in
  let n = Array.length ring in
  let rec bs lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if fst ring.(mid) < h then bs (mid + 1) hi else bs lo mid
  in
  let i = bs 0 n in
  snd ring.(if i = n then 0 else i)

let create ?(name = "router") ?(vnodes = 32) shards =
  if shards = [] then invalid_arg "Router.create: no shards";
  Actor.create ~name () >>= fun a ->
  return { r_actor = a; r_ring = build_ring vnodes shards }

let pick t key = pick_ring t.r_ring key

let dispatch t self =
  Hio_std.Combinators.forever
    ( Actor.receive self (fun (Route (k, m)) -> Some (k, m)) >>= fun (k, m) ->
      Actor.send (pick_ring t.r_ring k) m )

let body t = Actor.body t.r_actor (dispatch t)

let spawn ?name ?vnodes shards =
  create ?name ?vnodes shards >>= fun t ->
  Actor.fork_body t.r_actor (dispatch t) >>= fun () -> return t

let route t key m = Actor.send t.r_actor (Route (key, m))
let actor t = t.r_actor
let stop t = Actor.stop t.r_actor
