(** A typed actor mailbox: a {!Hio_std.Chan} in arrival order, plus a
    {e stash} for selective receive — messages the current receive
    pattern does not match are parked (still in arrival order) and
    offered again to later receives, Erlang-style.

    Ownership discipline: any thread may {!push}; exactly one thread —
    the owning actor — calls {!receive}/{!receive_timeout}. The stash is
    plain mutable state touched only inside atomic [lift] steps of that
    single consumer, so no lock is needed.

    Depth accounting: {!length} (queued + stashed) is tracked on every
    push/consume, with a {!high_water} mark and an optional
    [mailbox_depth{name}] gauge. With [bound] the mailbox becomes
    bounded with a deterministic {e shed-newest} overflow policy: a push
    into a full mailbox drops the {e new} message (counted in
    {!dropped_count}, reported to [on_drop]) rather than blocking the
    pusher or evicting an older message someone may already be waiting
    on — under overload the router keeps routing and the load-shedding
    layers above decide what the lost message costs.

    Asynchronous-exception safety (the reason this module exists rather
    than "just use [Chan]"): the whole receive loop runs under
    {!Hio.Io.mask_}. The only interruptible point is the [Chan.recv]
    wait itself (§5.3: blocked threads are killable), so a kill can
    never land {e between} taking a message off the channel and either
    returning it or stashing it — messages are delivered once or not
    taken at all, never lost in flight. *)

open Hio

type 'a t

val create :
  ?bound:int ->
  ?on_drop:('a -> unit) ->
  ?metrics:Obs.Metrics.t ->
  ?name:string ->
  unit ->
  'a t Io.t
(** Unbounded by default. [bound] caps {!length}; an overflowing push is
    dropped (shed-newest) after calling [on_drop] on the message (a pure
    callback inside the push's atomic step — for accounting, not I/O).
    [metrics] registers a [mailbox_depth{name}] gauge (default name
    ["mailbox"]) whose high-water mark is the worst depth seen. *)

val push : 'a t -> 'a -> unit Io.t
(** Enqueue a message. Never blocks and is safe from any thread; on a
    full bounded mailbox the message is dropped (see {!create}). *)

val push_urgent : 'a t -> 'a -> unit Io.t
(** {!push} that ignores the bound — for control messages (stop
    requests, monitor downs) whose exactly-once/liveness contracts must
    survive overload. Still counted in {!length}. *)

val receive : 'a t -> ('a -> 'b option) -> 'b Io.t
(** [receive t f] returns [x] for the first message [m] (stash first,
    then arrivals) with [f m = Some x], removing [m]. Non-matching
    arrivals are appended to the stash. Blocks interruptibly while the
    mailbox has no matching message. *)

val receive_timeout : int -> 'a t -> ('a -> 'b option) -> 'b option Io.t
(** Like {!receive} with a deadline of virtual µs on the timer wheel.
    Returns [None] on expiry. Built on {!Hio.Io.arm_timer} in the
    calling thread — no helper thread that could be holding a message
    when killed — and the timer is cancelled (posted token purged)
    before returning, so no ghost wakeup survives. *)

val next : 'a t -> 'a Io.t
(** [receive t Option.some]: the plain FIFO head. *)

val stashed : 'a t -> int Io.t
(** Messages currently parked by selective receives (tests/metrics). *)

val length : 'a t -> int Io.t
(** Messages in the mailbox right now: queued arrivals + stashed. *)

val high_water : 'a t -> int Io.t
(** The largest {!length} ever reached. *)

val dropped_count : 'a t -> int Io.t
(** Pushes shed by the bound since creation. *)
