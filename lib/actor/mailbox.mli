(** A typed actor mailbox: an unbounded {!Hio_std.Chan} in arrival
    order, plus a {e stash} for selective receive — messages the current
    receive pattern does not match are parked (still in arrival order)
    and offered again to later receives, Erlang-style.

    Ownership discipline: any thread may {!push}; exactly one thread —
    the owning actor — calls {!receive}/{!receive_timeout}. The stash is
    plain mutable state touched only inside atomic [lift] steps of that
    single consumer, so no lock is needed.

    Asynchronous-exception safety (the reason this module exists rather
    than "just use [Chan]"): the whole receive loop runs under
    {!Hio.Io.mask_}. The only interruptible point is the [Chan.recv]
    wait itself (§5.3: blocked threads are killable), so a kill can
    never land {e between} taking a message off the channel and either
    returning it or stashing it — messages are delivered once or not
    taken at all, never lost in flight. *)

open Hio

type 'a t

val create : unit -> 'a t Io.t

val push : 'a t -> 'a -> unit Io.t
(** Enqueue a message. Never blocks (the queue is unbounded) and is safe
    from any thread. *)

val receive : 'a t -> ('a -> 'b option) -> 'b Io.t
(** [receive t f] returns [x] for the first message [m] (stash first,
    then arrivals) with [f m = Some x], removing [m]. Non-matching
    arrivals are appended to the stash. Blocks interruptibly while the
    mailbox has no matching message. *)

val receive_timeout : int -> 'a t -> ('a -> 'b option) -> 'b option Io.t
(** Like {!receive} with a deadline of virtual µs on the timer wheel.
    Returns [None] on expiry. Built on {!Hio.Io.arm_timer} in the
    calling thread — no helper thread that could be holding a message
    when killed — and the timer is cancelled (posted token purged)
    before returning, so no ghost wakeup survives. *)

val next : 'a t -> 'a Io.t
(** [receive t Option.some]: the plain FIFO head. *)

val stashed : 'a t -> int Io.t
(** Messages currently parked by selective receives (tests/metrics). *)
