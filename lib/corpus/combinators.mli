(** The paper's §7 combinators as object-language terms, so the model
    checker can verify them against {e all} schedules.

    Each term is a (curried) function value; apply it with
    {!Ch_lang.Term.apps} or bind it with a [let] via {!with_prelude}. *)

open Ch_lang

val finally_t : Term.term
(** [\a -> \b -> ...] — §7.1: run [a]; whatever happens, run [b]. The
    release action runs inside [block]. *)

val finally_unmasked_t : Term.term
(** The incorrect variant the paper warns against — identical but with no
    [block], so a second asynchronous exception can land between the
    handler firing and the cleanup running ("using block … ensures that
    [the second argument] is always executed"). The test suite
    model-checks the vulnerability into existence. *)

val bracket_t : Term.term
(** [\acquire -> \use -> \release -> ...] — §7.1 generalization, with the
    paper's argument order ([bracket (openFile f) (\h -> work h)
    (\h -> hClose h)] — the work comes second, its result is returned). *)

val either_t : Term.term
(** [\a -> \b -> ...] — §7.2: run both, return [Left r] / [Right r] for
    whichever finishes first, kill the other; received asynchronous
    exceptions are propagated to both children. *)

val both_t : Term.term
(** [\a -> \b -> ...] — §7.2: run both to completion, pair the results; an
    exception from either child (or received from outside and propagated)
    kills the other and re-throws. *)

val timeout_t : Term.term
(** [\t -> \a -> ...] — §7.3: [Just r] if [a] beats the clock, [Nothing]
    otherwise; composable and nestable. *)

val safe_point_t : Term.term
(** [unblock (return ())] — §7.4. *)

val put_str_t : Term.term
(** [\s -> ...]: print a [Cons]/[Nil] list of characters (the parser's
    desugaring of string literals). *)

val with_prelude : Term.term -> Term.term
(** Bind [finally], [bracket], [either], [both], [timeout], [safePoint]
    and [putStr] around the given program, so corpus sources can call them
    by name. *)
