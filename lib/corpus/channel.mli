(** The unbounded channel of Concurrent Haskell, written in the object
    language — the paper's §4 claim ("using only MVars, many complex
    datatypes for concurrent communication can be built, including typed
    channels, semaphores and so on") made executable and model-checkable.

    A channel value is [Chan readEnd writeEnd]; the stream cells are
    [Item v rest] under MVars. [readChan] follows the §5.2 discipline: the
    read-end MVar is restored if the blocking read is interrupted, so a
    killed reader never wedges the channel (verified over all schedules in
    the test suite). *)

open Ch_lang

val new_chan_t : Term.term
(** [newChan :: IO (Chan a)] as a term. *)

val write_chan_t : Term.term
(** [\c -> \v -> ...]. *)

val read_chan_t : Term.term
(** [\c -> ...]; interruptible while the channel is empty. *)

val with_channel_prelude : Term.term -> Term.term
(** Bind [newChan], [writeChan], [readChan] around a program. *)
