(** A list prelude for the object language ([Cons]/[Nil], as produced by
    string literals): the purely-functional workload that dominates real
    Concurrent Haskell programs ("most of the time is spent in
    purely-functional code", §2).

    All definitions are call-by-name and work on {e infinite} lists where
    Haskell's do ([take], [map], [filter], [zipWith], …) — the test suite
    runs them on both the substitution-based evaluator and the sharing
    graph-reduction machine, where the classic [fibs] knot demonstrates
    why sharing matters. *)

open Ch_lang

val definitions : (string * Term.term) list
(** In dependency order: [map], [filter], [foldr], [foldl], [append],
    [length], [take], [drop], [head], [tail], [repeat], [iterate],
    [zipWith], [range], [sum], [reverse]. *)

val with_list_prelude : Term.term -> Term.term
(** Bind the whole prelude around a program (earlier definitions are in
    scope for later ones). *)
