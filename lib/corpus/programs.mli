(** Miscellaneous closed corpus programs used by tests, examples and
    benchmarks. *)

open Ch_lang

val hello : Term.term
(** Prints ["hi"] and returns [()]. *)

val echo : Term.term
(** Copies two characters from input to output. *)

val ping_pong : Term.term
(** Two threads bounce a counter through two MVars three times; the main
    thread returns the final count (6). *)

val producer_consumer : Term.term
(** A producer pushes 1..3 through an MVar, a consumer sums them; main
    returns the sum (6). *)

val diverge : Term.term
(** [let rec spin = spin in spin] — pure divergence at the redex. *)

val kill_sleeping : Term.term
(** Forks a sleeper, kills it, returns [()] — the (Interrupt) rule on a
    stuck thread. *)

val mask_interrupt : Term.term
(** A masked infinite loop with a [safePoint]-style [unblock] window: shows
    that delivery happens only inside the window. Returns [Caught] when the
    loop thread converts the exception to a result. *)

val counter_loop : int -> Term.term
(** [counter_loop n]: a single thread counts down from [n] via an MVar; used
    by the stepper benchmarks. Returns [0]. *)
