(** The locking protocols of paper §5.1–§5.2, as object-language programs.

    Each protocol is a function [\m -> io-action] that takes the lock
    (an MVar holding the shared state), computes a new state, and puts it
    back, with increasing degrees of protection against asynchronous
    exceptions. {!harness} wraps a protocol in the adversarial scenario the
    paper describes: a worker runs the protocol while another thread
    [throwTo]s it at an arbitrary moment; if the protocol loses the lock,
    the harness deadlocks — which the model checker then finds (or proves
    absent). *)

open Ch_lang

val unprotected : Term.term
(** [\m -> do { a <- takeMVar m; putMVar m (a+1) }] — no handler at all;
    any exception between take and put loses the lock. *)

val catch_only : Term.term
(** The first code fragment of §5.1: a [catch] restores the lock on
    synchronous exceptions, but there are race windows before the [catch]
    is installed and after it expires. *)

val block_protected : Term.term
(** The final fragment of §5.2:
    [block (do { a <- takeMVar m;
                 b <- catch (unblock (compute a)) (\e -> do { putMVar m a; throw e });
                 putMVar m b })] — no vulnerable window remains. *)

val blocked_compute : Term.term
(** §7.4 variant: like {!block_protected} but without [unblock] around the
    compute, for mutable structures that must not be disturbed at all. *)

val harness : Term.term -> Term.term
(** [harness protocol] is the closed program
    {v
    do { m <- newEmptyMVar; putMVar m 0;
         t <- forkIO (protocol m);
         throwTo t #KillThread;
         a <- takeMVar m;     -- deadlocks iff the protocol lost the lock
         return a }
    v} *)
