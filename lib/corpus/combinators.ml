open Ch_lang

let finally_t =
  Parser.parse
    {|\a -> \b -> block (do {
        r <- catch (unblock a) (\e -> do { b; throw e });
        b;
        return r
      })|}

let finally_unmasked_t =
  Parser.parse
    {|\a -> \b -> do {
        r <- catch a (\e -> do { b; throw e });
        b;
        return r
      }|}

let bracket_t =
  Parser.parse
    {|\acquire -> \use -> \release -> block (do {
        a <- acquire;
        r <- catch (unblock (use a)) (\e -> do { release a; throw e });
        release a;
        return r
      })|}

(* §7.2, verbatim from the paper (with [EitherRet] constructors A/B/X):
   fork both computations, take whichever result lands first, propagating
   any exception we receive meanwhile to both children, then kill both
   children — non-interruptibly, since we are inside [block] and the
   children are guaranteed alive-or-finished. *)
let either_t =
  Parser.parse
    {|\a -> \b -> do {
        m <- newEmptyMVar;
        block (do {
          aid <- forkIO (catch (do { r <- unblock a; putMVar m (A r) })
                               (\e -> putMVar m (X e)));
          bid <- forkIO (catch (do { r <- unblock b; putMVar m (B r) })
                               (\e -> putMVar m (X e)));
          let rec loop =
            catch (takeMVar m)
                  (\e -> do { throwTo aid e; throwTo bid e; loop }) in
          do {
            r <- loop;
            throwTo aid #KillThread;
            throwTo bid #KillThread;
            case r of {
              A x -> return (Left x);
              B x -> return (Right x);
              X e -> throw e
            }
          }
        })
      }|}

let both_t =
  Parser.parse
    {|\a -> \b -> do {
        ma <- newEmptyMVar;
        mb <- newEmptyMVar;
        block (do {
          aid <- forkIO (catch (do { r <- unblock a; putMVar ma (Ok r) })
                               (\e -> putMVar ma (Err e)));
          bid <- forkIO (catch (do { r <- unblock b; putMVar mb (Ok r) })
                               (\e -> putMVar mb (Err e)));
          let rec waitFor =
            \m -> catch (takeMVar m)
                        (\e -> do { throwTo aid e; throwTo bid e; waitFor m }) in
          do {
            ra <- waitFor ma;
            case ra of {
              Err e -> do { throwTo bid #KillThread; throw e };
              Ok x -> do {
                rb <- waitFor mb;
                case rb of {
                  Err e -> throw e;
                  Ok y -> return (x, y)
                }
              }
            }
          }
        })
      }|}

let timeout_t =
  Term.Let
    ( "either",
      either_t,
      Parser.parse
        {|\t -> \a -> do {
            r <- either (sleep t) a;
            case r of {
              Left u -> return Nothing;
              Right x -> return (Just x)
            }
          }|} )

let safe_point_t = Parser.parse "unblock (return ())"

let put_str_t =
  Parser.parse
    {|fix (\putStr -> \s ->
        case s of {
          Nil -> return ();
          Cons c rest -> putChar c >>= \u -> putStr rest
        })|}

let with_prelude program =
  List.fold_left
    (fun body (name, def) -> Term.Let (name, def, body))
    program
    [
      ("finally", finally_t);
      ("bracket", bracket_t);
      ("either", either_t);
      ("both", both_t);
      ("timeout", timeout_t);
      ("safePoint", safe_point_t);
      ("putStr", put_str_t);
    ]
