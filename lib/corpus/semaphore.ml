open Ch_lang

let p = Parser.parse

(* Shared pieces: the state is [Pair count waiters] in an MVar; waiter
   lists are Cons/Nil lists of private unit-MVars, compared with the
   object language's MVar equality. *)

let new_sem =
  p
    {|\n -> do {
        s <- newEmptyMVar;
        putMVar s (Pair n Nil);
        return s
      }|}

let signal_sem =
  p
    {|\s -> block (do {
        st <- takeMVar s;
        case st of {
          Pair c ws ->
            case ws of {
              Nil -> putMVar s (Pair (c + 1) Nil);
              Cons b rest -> do { putMVar b (); putMVar s (Pair c rest) }
            }
        }
      })|}

(* The robust signal: [takeMVar s] is interruptible while another thread
   holds the state (§5.3), and a signaller killed there loses the unit it
   was returning. With only the paper's primitives the fix is the
   critical-take idiom: catch the asynchronous exception, re-post it to
   ourselves with the asynchronous throwTo (we are masked, so it just goes
   back on our pending queue), and retry. *)
let robust_signal =
  p
    {|\s -> block (
        let rec acquire =
          catch (takeMVar s)
                (\e -> do { me <- myThreadId; throwTo me e; acquire }) in
        do {
          st <- acquire;
          case st of {
            Pair c ws ->
              case ws of {
                Nil -> putMVar s (Pair (c + 1) Nil);
                Cons b rest -> do { putMVar b (); putMVar s (Pair c rest) }
              }
          }
        })|}

(* The 2001-era waiter: it unblocks around the private take (copying the
   lock example's pattern where it does not apply) and installs no
   cleanup. Two distinct schedules lose a unit: a kill between handoff and
   pickup discards the unit with the abandoned continuation, and a kill
   while queued leaves a ghost registration that a later signal feeds. *)
let naive_wait =
  p
    {|\s -> block (do {
        st <- takeMVar s;
        case st of {
          Pair c ws ->
            if 0 < c then putMVar s (Pair (c - 1) ws)
            else do {
              b <- newEmptyMVar;
              putMVar s (Pair c (Cons b ws));
              unblock (takeMVar b)
            }
        }
      })|}

(* The §5.3-correct waiter: the private take stays MASKED — interruptible
   exactly while the unit has not been handed over (the resource is
   unavailable), atomic once it has — and the handler withdraws the
   registration or passes a concurrently-dedicated unit on. *)
let robust_wait =
  p
    {|\s -> block (
        let rec elemMV = \b -> \ws ->
          case ws of {
            Nil -> False;
            Cons w rest -> if w == b then True else elemMV b rest
          } in
        let rec removeMV = \b -> \ws ->
          case ws of {
            Nil -> Nil;
            Cons w rest -> if w == b then rest else Cons w (removeMV b rest)
          } in
        do {
          st <- takeMVar s;
          case st of {
            Pair c ws ->
              if 0 < c then putMVar s (Pair (c - 1) ws)
              else do {
                b <- newEmptyMVar;
                putMVar s (Pair c (Cons b ws));
                catch (takeMVar b)
                      (\e -> do {
                         st2 <- takeMVar s;
                         case st2 of {
                           Pair c2 ws2 ->
                             if elemMV b ws2
                             then do {
                               putMVar s (Pair c2 (removeMV b ws2));
                               throw e
                             }
                             else do {
                               -- a signal already dedicated a unit to us:
                               -- it is still inside b (the masked take is
                               -- atomic once full), so pass it on
                               u <- takeMVar b;
                               case ws2 of {
                                 Nil -> do { putMVar s (Pair (c2 + 1) Nil); throw e };
                                 Cons b2 rest -> do {
                                   putMVar b2 ();
                                   putMVar s (Pair c2 rest);
                                   throw e
                                 }
                               }
                             }
                         }
                       })
              }
          }
        })|}

let naive =
  [ ("newSem", new_sem); ("signalSem", signal_sem); ("waitSem", naive_wait) ]

let robust =
  [ ("newSem", new_sem); ("signalSem", robust_signal); ("waitSem", robust_wait) ]

let with_sem_prelude ~variant program =
  let defs = match variant with `Naive -> naive | `Robust -> robust in
  List.fold_right
    (fun (name, def) body -> Term.Let (name, def, body))
    defs program
