open Ch_lang

let hello = Parser.parse "do { putChar 'h'; putChar 'i'; return () }"
let echo = Parser.parse "do { c <- getChar; putChar c; d <- getChar; putChar d; return () }"

let ping_pong =
  Parser.parse
    {|do {
        ping <- newEmptyMVar;
        pong <- newEmptyMVar;
        t <- forkIO (let rec go =
                       do { x <- takeMVar ping; putMVar pong (x + 1); go } in
                     go);
        putMVar ping 1;
        a <- takeMVar pong;
        putMVar ping (a + 1);
        b <- takeMVar pong;
        putMVar ping (b + 1);
        c <- takeMVar pong;
        throwTo t #KillThread;
        return c
      }|}

let producer_consumer =
  Parser.parse
    {|do {
        box <- newEmptyMVar;
        t <- forkIO (do { putMVar box 1; putMVar box 2; putMVar box 3 });
        x <- takeMVar box;
        y <- takeMVar box;
        z <- takeMVar box;
        return (x + y + z)
      }|}

let diverge = Parser.parse "let rec spin = spin in spin"

let kill_sleeping =
  Parser.parse
    {|do {
        t <- forkIO (sleep 1000);
        throwTo t #Timeout;
        return ()
      }|}

let mask_interrupt =
  Parser.parse
    {|do {
        done_ <- newEmptyMVar;
        t <- forkIO (catch (block (let rec go =
                                     do { unblock (return ()); go } in
                                   go))
                           (\e -> putMVar done_ Caught));
        throwTo t #KillThread;
        r <- takeMVar done_;
        return r
      }|}

let counter_loop n =
  Term.Let
    ( "start",
      Term.Lit_int n,
      Parser.parse
        {|do {
            box <- newEmptyMVar;
            putMVar box start;
            let rec go =
              do {
                x <- takeMVar box;
                if x == 0 then return 0
                else do { putMVar box (x - 1); go }
              } in
            go
          }|} )
