(** Quantity semaphores in the object language — the other structure §4
    promises can be built "using only MVars". Two variants:

    - {!naive}: the straightforward 2001-era implementation — a waiter
      enqueues a private MVar and takes it, with no cleanup on
      interruption. Under asynchronous exceptions it {e loses capacity}:
      a signal can hand a unit to a waiter that a kill has already doomed.
      The model checker exhibits the losing schedule.
    - {!robust}: the waiter withdraws its registration on interruption
      (and passes a concurrently-handed unit on), following the §5.2
      discipline — the fix GHC eventually needed uninterruptibleMask for,
      written here with the paper's own primitives.

    Both are records of terms: bind them with {!with_sem_prelude} and call
    [newSem n], [waitSem s], [signalSem s] from corpus programs. *)

open Ch_lang

val naive : (string * Term.term) list
val robust : (string * Term.term) list

val with_sem_prelude :
  variant:[ `Naive | `Robust ] -> Term.term -> Term.term
