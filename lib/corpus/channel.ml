open Ch_lang

let new_chan_t =
  Parser.parse
    {|do {
        hole <- newEmptyMVar;
        readEnd <- newEmptyMVar;
        writeEnd <- newEmptyMVar;
        putMVar readEnd hole;
        putMVar writeEnd hole;
        return (Chan readEnd writeEnd)
      }|}

let write_chan_t =
  Parser.parse
    {|\c -> \v -> case c of {
        Chan readEnd writeEnd -> block (do {
          newHole <- newEmptyMVar;
          oldHole <- takeMVar writeEnd;
          putMVar oldHole (Item v newHole);
          putMVar writeEnd newHole
        })
      }|}

let read_chan_t =
  Parser.parse
    {|\c -> case c of {
        Chan readEnd writeEnd -> block (do {
          stream <- takeMVar readEnd;
          item <- catch (unblock (takeMVar stream))
                        (\e -> do { putMVar readEnd stream; throw e });
          case item of {
            Item v rest -> do { putMVar readEnd rest; return v }
          }
        })
      }|}

let with_channel_prelude program =
  List.fold_left
    (fun body (name, def) -> Term.Let (name, def, body))
    program
    [
      ("newChan", new_chan_t);
      ("writeChan", write_chan_t);
      ("readChan", read_chan_t);
    ]
