open Ch_lang

(* The shared-state update: [compute a = return (a + 1)]. Pure and quick,
   but the race windows around it are what the paper is about. *)

let unprotected =
  Parser.parse "\\m -> do { a <- takeMVar m; putMVar m (a + 1) }"

let catch_only =
  Parser.parse
    {|\m -> do {
        a <- takeMVar m;
        b <- catch (return (a + 1)) (\e -> do { putMVar m a; throw e });
        putMVar m b
      }|}

let block_protected =
  Parser.parse
    {|\m -> block (do {
        a <- takeMVar m;
        b <- catch (unblock (return (a + 1)))
                   (\e -> do { putMVar m a; throw e });
        putMVar m b
      })|}

let blocked_compute =
  Parser.parse
    {|\m -> block (do {
        a <- takeMVar m;
        b <- catch (return (a + 1)) (\e -> do { putMVar m a; throw e });
        putMVar m b
      })|}

let harness protocol =
  Term.Let
    ( "protocol",
      protocol,
      Parser.parse
        {|do {
            m <- newEmptyMVar;
            putMVar m 0;
            t <- forkIO (protocol m);
            throwTo t #KillThread;
            a <- takeMVar m;
            return a
          }|} )
