open Ch_lang

let p = Parser.parse

let definitions =
  [
    ( "map",
      p
        {|fix (\map -> \f -> \xs ->
            case xs of {
              Nil -> Nil;
              Cons x rest -> Cons (f x) (map f rest)
            })|} );
    ( "filter",
      p
        {|fix (\filter -> \pred -> \xs ->
            case xs of {
              Nil -> Nil;
              Cons x rest ->
                if pred x then Cons x (filter pred rest)
                else filter pred rest
            })|} );
    ( "foldr",
      p
        {|fix (\foldr -> \f -> \z -> \xs ->
            case xs of {
              Nil -> z;
              Cons x rest -> f x (foldr f z rest)
            })|} );
    ( "foldl",
      p
        {|fix (\foldl -> \f -> \acc -> \xs ->
            case xs of {
              Nil -> acc;
              Cons x rest -> foldl f (f acc x) rest
            })|} );
    ( "append",
      p
        {|fix (\append -> \xs -> \ys ->
            case xs of {
              Nil -> ys;
              Cons x rest -> Cons x (append rest ys)
            })|} );
    ("length", p {|foldl (\n -> \x -> n + 1) 0|});
    ( "take",
      p
        {|fix (\take -> \n -> \xs ->
            if n <= 0 then Nil
            else case xs of {
              Nil -> Nil;
              Cons x rest -> Cons x (take (n - 1) rest)
            })|} );
    ( "drop",
      p
        {|fix (\drop -> \n -> \xs ->
            if n <= 0 then xs
            else case xs of {
              Nil -> Nil;
              Cons x rest -> drop (n - 1) rest
            })|} );
    ("head", p {|\xs -> case xs of { Cons x rest -> x }|});
    ("tail", p {|\xs -> case xs of { Cons x rest -> rest }|});
    ("repeat", p {|fix (\repeat -> \x -> Cons x (repeat x))|});
    ( "iterate",
      p {|fix (\iterate -> \f -> \x -> Cons x (iterate f (f x)))|} );
    ( "zipWith",
      p
        {|fix (\zipWith -> \f -> \xs -> \ys ->
            case xs of {
              Nil -> Nil;
              Cons x xrest ->
                case ys of {
                  Nil -> Nil;
                  Cons y yrest -> Cons (f x y) (zipWith f xrest yrest)
                }
            })|} );
    ( "range",
      p
        {|fix (\range -> \lo -> \hi ->
            if hi < lo then Nil else Cons lo (range (lo + 1) hi))|} );
    ("sum", p {|foldl (\a -> \b -> a + b) 0|});
    ( "reverse",
      p {|foldl (\acc -> \x -> Cons x acc) Nil|} );
  ]

let with_list_prelude program =
  (* earlier definitions must be in scope for later ones, so the first
     binding is outermost *)
  List.fold_right
    (fun (name, def) body -> Term.Let (name, def, body))
    definitions program
