open Term

exception Parse_error of { line : int; col : int; message : string }

type stream = { mutable toks : Lexer.located list }

let peek st =
  match st.toks with
  | t :: _ -> t
  | [] -> assert false (* tokenize always ends with EOF *)

let peek_token st = (peek st).token

let peek2_token st =
  match st.toks with _ :: t :: _ -> Some t.token | _ -> None

let advance st = match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let fail st message =
  let t = peek st in
  raise (Parse_error { line = t.line; col = t.col; message })

let expect st token =
  if peek_token st = token then advance st
  else
    fail st
      (Printf.sprintf "expected '%s' but found '%s'"
         (Lexer.token_to_string token)
         (Lexer.token_to_string (peek_token st)))

(* Primitive names: arity and constructor. *)
let builtins : (string * (int * (term list -> term))) list =
  [
    ("return", (1, function [ a ] -> Return a | _ -> assert false));
    ("raise", (1, function [ a ] -> Raise a | _ -> assert false));
    ("fix", (1, function [ a ] -> Fix a | _ -> assert false));
    ("putChar", (1, function [ a ] -> Put_char a | _ -> assert false));
    ("getChar", (0, function [] -> Get_char | _ -> assert false));
    ("newEmptyMVar", (0, function [] -> New_mvar | _ -> assert false));
    ("takeMVar", (1, function [ a ] -> Take_mvar a | _ -> assert false));
    ("putMVar", (2, function [ a; b ] -> Put_mvar (a, b) | _ -> assert false));
    ("sleep", (1, function [ a ] -> Sleep a | _ -> assert false));
    ("throw", (1, function [ a ] -> Throw a | _ -> assert false));
    ("catch", (2, function [ a; b ] -> Catch (a, b) | _ -> assert false));
    ("throwTo", (2, function [ a; b ] -> Throw_to (a, b) | _ -> assert false));
    ("block", (1, function [ a ] -> Block a | _ -> assert false));
    ("unblock", (1, function [ a ] -> Unblock a | _ -> assert false));
    ("forkIO", (1, function [ a ] -> Fork a | _ -> assert false));
    ("myThreadId", (0, function [] -> My_tid | _ -> assert false));
  ]

let is_builtin name = List.mem_assoc name builtins

(* Saturate a builtin of the given arity with the supplied arguments:
   missing arguments are eta-expanded, surplus ones become applications. *)
let apply_builtin arity build args =
  let supplied = List.length args in
  if supplied >= arity then
    let rec split n = function
      | rest when n = 0 -> ([], rest)
      | a :: rest ->
          let taken, surplus = split (n - 1) rest in
          (a :: taken, surplus)
      | [] -> assert false
    in
    let taken, surplus = split arity args in
    apps (build taken) surplus
  else begin
    let missing =
      let rec gen n avoid acc =
        if n = 0 then List.rev acc
        else
          let x = Subst.fresh ~avoid "eta" in
          gen (n - 1) (x :: avoid) (x :: acc)
      in
      gen (arity - supplied) (List.concat_map free_vars args) []
    in
    lams missing (build (args @ List.map (fun x -> Var x) missing))
  end

let starts_atom = function
  | Lexer.INT _ | CHAR _ | EXN _ | STRING _ | MVAR_NAME _ | TID_NAME _
  | LIDENT _ | UIDENT _ | LPAREN ->
      true
  | _ -> false

let starts_open_ended = function
  | Lexer.BACKSLASH | KW_LET | KW_IF | KW_CASE | KW_DO -> true
  | _ -> false

let rec parse_expr st =
  match peek_token st with
  | Lexer.BACKSLASH ->
      advance st;
      let rec params acc =
        match peek_token st with
        | Lexer.LIDENT x when is_builtin x ->
            fail st (Printf.sprintf "'%s' is a reserved primitive name" x)
        | Lexer.LIDENT x ->
            advance st;
            params (x :: acc)
        | Lexer.ARROW ->
            advance st;
            List.rev acc
        | _ -> fail st "expected parameter or '->' in lambda"
      in
      let xs = params [] in
      if xs = [] then fail st "lambda needs at least one parameter"
      else lams xs (parse_expr st)
  | Lexer.KW_LET ->
      advance st;
      let recursive =
        if peek_token st = Lexer.KW_REC then begin
          advance st;
          true
        end
        else false
      in
      let x = parse_lident st in
      expect st Lexer.EQUALS;
      let def = parse_expr st in
      expect st Lexer.KW_IN;
      let body = parse_expr st in
      if recursive then let_rec x def body else Let (x, def, body)
  | Lexer.KW_IF ->
      advance st;
      let c = parse_expr st in
      expect st Lexer.KW_THEN;
      let t = parse_expr st in
      expect st Lexer.KW_ELSE;
      let e = parse_expr st in
      If (c, t, e)
  | Lexer.KW_CASE ->
      advance st;
      let scrutinee = parse_expr st in
      expect st Lexer.KW_OF;
      expect st Lexer.LBRACE;
      let alts = parse_alts st in
      expect st Lexer.RBRACE;
      Case (scrutinee, alts)
  | Lexer.KW_DO ->
      advance st;
      expect st Lexer.LBRACE;
      let body = parse_do st in
      expect st Lexer.RBRACE;
      body
  | _ -> parse_bind st

and parse_lident st =
  match peek_token st with
  | Lexer.LIDENT x ->
      advance st;
      if is_builtin x then
        fail st (Printf.sprintf "'%s' is a reserved primitive name" x)
      else x
  | _ -> fail st "expected identifier"

and parse_alts st =
  let alt () =
    match peek_token st with
    | Lexer.UIDENT c ->
        advance st;
        let rec params acc =
          match peek_token st with
          | Lexer.LIDENT x when is_builtin x ->
              fail st (Printf.sprintf "'%s' is a reserved primitive name" x)
          | Lexer.LIDENT x ->
              advance st;
              params (x :: acc)
          | _ -> List.rev acc
        in
        let xs = params [] in
        expect st Lexer.ARROW;
        Alt (c, xs, parse_expr st)
    | Lexer.LIDENT x ->
        advance st;
        expect st Lexer.ARROW;
        Default (x, parse_expr st)
    | _ -> fail st "expected case alternative"
  in
  let rec more acc =
    if peek_token st = Lexer.SEMI then begin
      advance st;
      if peek_token st = Lexer.RBRACE then List.rev acc
      else more (alt () :: acc)
    end
    else List.rev acc
  in
  more [ alt () ]

and parse_do st =
  (* A do block is a ';'-separated statement list whose last statement must
     be an expression; desugars to [>>=] / [let]. *)
  let stmt () =
    match (peek_token st, peek2_token st) with
    | Lexer.LIDENT x, Some Lexer.LARROW ->
        if is_builtin x then
          fail st (Printf.sprintf "'%s' is a reserved primitive name" x);
        advance st;
        advance st;
        `Bind_to (x, parse_expr st)
    | Lexer.KW_LET, _ -> (
        advance st;
        let recursive =
          if peek_token st = Lexer.KW_REC then begin
            advance st;
            true
          end
          else false
        in
        let x = parse_lident st in
        expect st Lexer.EQUALS;
        let def = parse_expr st in
        (* [let x = e in body] is also allowed as the final statement. *)
        match peek_token st with
        | Lexer.KW_IN ->
            advance st;
            let body = parse_expr st in
            `Expr (if recursive then let_rec x def body else Let (x, def, body))
        | _ ->
            if recursive then `Let_rec_eq (x, def) else `Let_eq (x, def))
    | _ -> `Expr (parse_expr st)
  in
  let rec stmts acc =
    let s = stmt () in
    if peek_token st = Lexer.SEMI then begin
      advance st;
      if peek_token st = Lexer.RBRACE then List.rev (s :: acc)
      else stmts (s :: acc)
    end
    else List.rev (s :: acc)
  in
  let rec desugar = function
    | [ `Expr e ] -> e
    | [ (`Bind_to _ | `Let_eq _ | `Let_rec_eq _) ] | [] ->
        fail st "a do block must end with an expression"
    | `Expr e :: rest -> then_ e (desugar rest)
    | `Bind_to (x, e) :: rest -> Bind (e, Lam (x, desugar rest))
    | `Let_eq (x, e) :: rest -> Let (x, e, desugar rest)
    | `Let_rec_eq (x, e) :: rest -> let_rec x e (desugar rest)
  in
  desugar (stmts [])

and parse_bind st =
  let rec loop left =
    match peek_token st with
    | Lexer.OP_BIND ->
        advance st;
        if starts_open_ended (peek_token st) then Bind (left, parse_expr st)
        else loop (Bind (left, parse_cmp st))
    | Lexer.OP_THEN ->
        advance st;
        if starts_open_ended (peek_token st) then then_ left (parse_expr st)
        else loop (then_ left (parse_cmp st))
    | _ -> left
  in
  loop (parse_cmp st)

and parse_cmp st =
  let left = parse_add st in
  let op =
    match peek_token st with
    | Lexer.OP_EQ -> Some Eq
    | Lexer.OP_NE -> Some Ne
    | Lexer.OP_LT -> Some Lt
    | Lexer.OP_LE -> Some Le
    | _ -> None
  in
  match op with
  | None -> left
  | Some op ->
      advance st;
      Prim (op, left, parse_add st)

and parse_add st =
  let rec loop left =
    match peek_token st with
    | Lexer.OP_PLUS ->
        advance st;
        loop (Prim (Add, left, parse_mul st))
    | Lexer.OP_MINUS ->
        advance st;
        loop (Prim (Sub, left, parse_mul st))
    | _ -> left
  in
  loop (parse_mul st)

and parse_mul st =
  let rec loop left =
    match peek_token st with
    | Lexer.OP_STAR ->
        advance st;
        loop (Prim (Mul, left, parse_app st))
    | Lexer.OP_SLASH ->
        advance st;
        loop (Prim (Div, left, parse_app st))
    | _ -> left
  in
  loop (parse_app st)

and parse_app st =
  let head_tok = peek_token st in
  let head_name =
    match head_tok with
    | Lexer.LIDENT x when is_builtin x -> `Builtin x
    | Lexer.UIDENT c -> `Con c
    | _ -> `Plain
  in
  (match head_name with `Builtin _ | `Con _ -> advance st | `Plain -> ());
  let rec args acc =
    if starts_atom (peek_token st) then args (parse_atom st :: acc)
    else List.rev acc
  in
  match head_name with
  | `Builtin x ->
      let arity, build = List.assoc x builtins in
      apply_builtin arity build (args [])
  | `Con c -> Con (c, args [])
  | `Plain ->
      let head = parse_atom st in
      apps head (args [])

and parse_atom st =
  match peek_token st with
  | Lexer.INT i ->
      advance st;
      Lit_int i
  | Lexer.CHAR c ->
      advance st;
      Lit_char c
  | Lexer.EXN e ->
      advance st;
      Lit_exn e
  | Lexer.STRING s ->
      advance st;
      String.fold_right
        (fun c rest -> Con ("Cons", [ Lit_char c; rest ]))
        s
        (Con ("Nil", []))
  | Lexer.MVAR_NAME n ->
      advance st;
      Mvar n
  | Lexer.TID_NAME n ->
      advance st;
      Tid n
  | Lexer.LIDENT x ->
      advance st;
      if is_builtin x then
        let arity, build = List.assoc x builtins in
        apply_builtin arity build []
      else Var x
  | Lexer.UIDENT c ->
      advance st;
      Con (c, [])
  | Lexer.LPAREN -> (
      advance st;
      match peek_token st with
      | Lexer.RPAREN ->
          advance st;
          unit_v
      | Lexer.OP_MINUS when
          (match peek2_token st with Some (Lexer.INT _) -> true | _ -> false)
        -> (
          advance st;
          match peek_token st with
          | Lexer.INT i ->
              advance st;
              expect st Lexer.RPAREN;
              Lit_int (-i)
          | _ -> assert false)
      | _ -> (
          let e = parse_expr st in
          match peek_token st with
          | Lexer.COMMA ->
              advance st;
              let e2 = parse_expr st in
              expect st Lexer.RPAREN;
              pair e e2
          | _ ->
              expect st Lexer.RPAREN;
              e))
  | _ ->
      fail st
        (Printf.sprintf "unexpected token '%s'"
           (Lexer.token_to_string (peek_token st)))

let parse src =
  let st = { toks = Lexer.tokenize src } in
  let e = parse_expr st in
  expect st Lexer.EOF;
  e
