type var = string
type exn_name = string
type tid = int
type mvar_name = int
type prim_op = Add | Sub | Mul | Div | Eq | Ne | Lt | Le

type term =
  | Var of var
  | Lam of var * term
  | App of term * term
  | Con of string * term list
  | Lit_int of int
  | Lit_char of char
  | Lit_exn of exn_name
  | Mvar of mvar_name
  | Tid of tid
  | Prim of prim_op * term * term
  | If of term * term * term
  | Case of term * alt list
  | Let of var * term * term
  | Fix of term
  | Raise of term
  | Return of term
  | Bind of term * term
  | Put_char of term
  | Get_char
  | New_mvar
  | Take_mvar of term
  | Put_mvar of term * term
  | Sleep of term
  | Throw of term
  | Catch of term * term
  | Throw_to of term * term
  | Block of term
  | Unblock of term
  | Fork of term
  | My_tid

and alt = Alt of string * var list * term | Default of var * term

let is_char_lit = function Lit_char _ -> true | _ -> false
let is_int_lit = function Lit_int _ -> true | _ -> false
let is_exn_lit = function Lit_exn _ -> true | _ -> false
let is_mvar_name = function Mvar _ -> true | _ -> false
let is_tid_name = function Tid _ -> true | _ -> false

let is_value = function
  | Var _ | Lam _ | Con _ | Lit_int _ | Lit_char _ | Lit_exn _ | Mvar _
  | Tid _ ->
      true
  | Return _ | Bind _ | Catch _ | Block _ | Unblock _ | Fork _ | Get_char
  | New_mvar | My_tid ->
      true
  | Put_char m -> is_char_lit m
  | Take_mvar m -> is_mvar_name m
  | Put_mvar (m, _) -> is_mvar_name m
  | Sleep m -> is_int_lit m
  | Throw m -> is_exn_lit m
  | Throw_to (t, e) -> is_tid_name t && is_exn_lit e
  | App _ | Prim _ | If _ | Case _ | Let _ | Fix _ | Raise _ -> false

let free_vars term =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let rec go bound = function
    | Var x ->
        if (not (List.mem x bound)) && not (Hashtbl.mem seen x) then begin
          Hashtbl.add seen x ();
          out := x :: !out
        end
    | Lam (x, m) -> go (x :: bound) m
    | App (m, n) | Prim (_, m, n) | Bind (m, n) | Put_mvar (m, n)
    | Catch (m, n) | Throw_to (m, n) ->
        go bound m;
        go bound n
    | Con (_, ms) -> List.iter (go bound) ms
    | Lit_int _ | Lit_char _ | Lit_exn _ | Mvar _ | Tid _ | Get_char
    | New_mvar | My_tid ->
        ()
    | If (c, t, e) ->
        go bound c;
        go bound t;
        go bound e
    | Case (s, alts) ->
        go bound s;
        List.iter
          (function
            | Alt (_, xs, b) -> go (xs @ bound) b
            | Default (x, b) -> go (x :: bound) b)
          alts
    | Let (x, m, n) ->
        go bound m;
        go (x :: bound) n
    | Fix m | Raise m | Return m | Put_char m | Take_mvar m | Sleep m
    | Throw m | Block m | Unblock m | Fork m ->
        go bound m
  in
  go [] term;
  List.rev !out

let alpha_eq a b =
  (* Bound variables are compared via de-Bruijn-style environments mapping
     each name to its binding depth. *)
  let rec go depth enva envb a b =
    let var_eq x y =
      match (List.assoc_opt x enva, List.assoc_opt y envb) with
      | Some i, Some j -> i = j
      | None, None -> String.equal x y
      | Some _, None | None, Some _ -> false
    in
    match (a, b) with
    | Var x, Var y -> var_eq x y
    | Lam (x, m), Lam (y, n) ->
        go (depth + 1) ((x, depth) :: enva) ((y, depth) :: envb) m n
    | App (m1, n1), App (m2, n2)
    | Bind (m1, n1), Bind (m2, n2)
    | Put_mvar (m1, n1), Put_mvar (m2, n2)
    | Catch (m1, n1), Catch (m2, n2)
    | Throw_to (m1, n1), Throw_to (m2, n2) ->
        go depth enva envb m1 m2 && go depth enva envb n1 n2
    | Prim (o1, m1, n1), Prim (o2, m2, n2) ->
        o1 = o2 && go depth enva envb m1 m2 && go depth enva envb n1 n2
    | Con (c1, ms), Con (c2, ns) ->
        String.equal c1 c2
        && List.length ms = List.length ns
        && List.for_all2 (go depth enva envb) ms ns
    | Lit_int i, Lit_int j -> i = j
    | Lit_char c, Lit_char d -> c = d
    | Lit_exn e, Lit_exn f -> String.equal e f
    | Mvar m, Mvar n -> m = n
    | Tid t, Tid u -> t = u
    | If (c1, t1, e1), If (c2, t2, e2) ->
        go depth enva envb c1 c2 && go depth enva envb t1 t2
        && go depth enva envb e1 e2
    | Case (s1, alts1), Case (s2, alts2) ->
        go depth enva envb s1 s2
        && List.length alts1 = List.length alts2
        && List.for_all2
             (fun alt1 alt2 ->
               match (alt1, alt2) with
               | Alt (c1, xs, b1), Alt (c2, ys, b2) ->
                   String.equal c1 c2
                   && List.length xs = List.length ys
                   && (let n = List.length xs in
                       let enva' =
                         List.mapi (fun i x -> (x, depth + i)) xs @ enva
                       and envb' =
                         List.mapi (fun i y -> (y, depth + i)) ys @ envb
                       in
                       go (depth + n) enva' envb' b1 b2)
               | Default (x, b1), Default (y, b2) ->
                   go (depth + 1) ((x, depth) :: enva) ((y, depth) :: envb) b1
                     b2
               | Alt _, Default _ | Default _, Alt _ -> false)
             alts1 alts2
    | Let (x, m1, n1), Let (y, m2, n2) ->
        go depth enva envb m1 m2
        && go (depth + 1) ((x, depth) :: enva) ((y, depth) :: envb) n1 n2
    | Fix m, Fix n
    | Raise m, Raise n
    | Return m, Return n
    | Put_char m, Put_char n
    | Take_mvar m, Take_mvar n
    | Sleep m, Sleep n
    | Throw m, Throw n
    | Block m, Block n
    | Unblock m, Unblock n
    | Fork m, Fork n ->
        go depth enva envb m n
    | Get_char, Get_char | New_mvar, New_mvar | My_tid, My_tid -> true
    | ( ( Var _ | Lam _ | App _ | Con _ | Lit_int _ | Lit_char _ | Lit_exn _
        | Mvar _ | Tid _ | Prim _ | If _ | Case _ | Let _ | Fix _ | Raise _
        | Return _ | Bind _ | Put_char _ | Get_char | New_mvar | Take_mvar _
        | Put_mvar _ | Sleep _ | Throw _ | Catch _ | Throw_to _ | Block _
        | Unblock _ | Fork _ | My_tid ),
        _ ) ->
        false
  in
  go 0 [] [] a b

let unit_v = Con ("()", [])
let pair a b = Con ("(,)", [ a; b ])
let true_v = Con ("True", [])
let false_v = Con ("False", [])
let nothing = Con ("Nothing", [])
let just m = Con ("Just", [ m ])
let lams xs body = List.fold_right (fun x m -> Lam (x, m)) xs body
let apps f args = List.fold_left (fun m a -> App (m, a)) f args
let then_ a b = Bind (a, Lam ("_then", b))
let binds ms k = List.fold_right then_ ms k
let let_rec f def body = Let (f, Fix (Lam (f, def)), body)
