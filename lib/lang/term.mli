(** Abstract syntax of the object language — Figure 1 of the paper.

    Terms cover both the purely-functional fragment (variables, lambdas,
    applications, constructors, literals, [case], [if], [let], fixpoints,
    pure [raise]) and the monadic IO fragment ([return], [>>=], [putChar],
    [getChar], MVar operations, [sleep], [throw], [catch]) together with the
    asynchronous-exception extension of Figure 5 ([throwTo], [block],
    [unblock], plus [forkIO] and [myThreadId] from Concurrent Haskell).

    Following the paper, several monadic operations are "strict data
    constructors": [putChar M] is a term, and only [putChar ch] (with a
    literal character argument) is a value. {!is_value} implements exactly
    the value grammar of Figure 1. *)

type var = string

(** Names of exception constants ([e] in the paper's grammar). *)
type exn_name = string

(** Thread names [t] and MVar names [m]. These are introduced at runtime by
    [forkIO] and [newEmptyMVar]; the parser never produces them. *)
type tid = int

type mvar_name = int

type prim_op = Add | Sub | Mul | Div | Eq | Ne | Lt | Le

type term =
  | Var of var
  | Lam of var * term
  | App of term * term
  | Con of string * term list  (** lazy constructor application, curryable *)
  | Lit_int of int
  | Lit_char of char
  | Lit_exn of exn_name
  | Mvar of mvar_name
  | Tid of tid
  | Prim of prim_op * term * term
  | If of term * term * term
  | Case of term * alt list
  | Let of var * term * term
  | Fix of term  (** [Fix M] evaluates as [M (Fix M)]; used for recursion *)
  | Raise of term  (** pure [raise :: Exception -> a] of the inner semantics *)
  | Return of term
  | Bind of term * term
  | Put_char of term
  | Get_char
  | New_mvar
  | Take_mvar of term
  | Put_mvar of term * term
  | Sleep of term
  | Throw of term
  | Catch of term * term
  | Throw_to of term * term
  | Block of term
  | Unblock of term
  | Fork of term
  | My_tid

and alt =
  | Alt of string * var list * term  (** [C x1 .. xn -> body] *)
  | Default of var * term  (** [x -> body], catch-all *)

val is_value : term -> bool
(** [is_value m] holds exactly when [m] matches the value grammar [V] of
    Figures 1 and 5: lambdas, constructors, literals, names, and monadic
    operations whose strict arguments are already literals/names. *)

val free_vars : term -> var list
(** Free variables, each listed once, in first-occurrence order. *)

val alpha_eq : term -> term -> bool
(** Equality up to renaming of bound variables. *)

val unit_v : term
(** The unit value [()], i.e. [Con ("()", [])]. *)

val pair : term -> term -> term
val true_v : term
val false_v : term
val nothing : term
val just : term -> term
val lams : var list -> term -> term
val apps : term -> term list -> term
val binds : term list -> term -> term
(** [binds [a; b] k] is [a >>= \_ -> b >>= \_ -> k] (sequencing, ignoring
    results). *)

val then_ : term -> term -> term
(** [then_ a b] is [a >>= \_ -> b], Haskell's [>>]. *)

val let_rec : var -> term -> term -> term
(** [let_rec f def body] is [let f = fix (\f -> def) in body]. *)
