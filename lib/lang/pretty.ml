open Term

let pp_prim_op ppf op =
  Fmt.string ppf
    (match op with
    | Add -> "+"
    | Sub -> "-"
    | Mul -> "*"
    | Div -> "/"
    | Eq -> "=="
    | Ne -> "/="
    | Lt -> "<"
    | Le -> "<=")

(* Precedence levels: 0 lambda/let/if/case, 1 [>>=], 2 comparisons,
   3 additive, 4 multiplicative, 5 application, 6 atoms. *)

let prim_level = function
  | Eq | Ne | Lt | Le -> 2
  | Add | Sub -> 3
  | Mul | Div -> 4

let pp_char_lit ppf c =
  match c with
  | '\n' -> Fmt.string ppf "'\\n'"
  | '\t' -> Fmt.string ppf "'\\t'"
  | '\\' -> Fmt.string ppf "'\\\\'"
  | '\'' -> Fmt.string ppf "'\\''"
  | c -> Fmt.pf ppf "'%c'" c

let rec pp level ppf m =
  let paren lvl body =
    if level > lvl then Fmt.pf ppf "(%t)" body else body ppf
  in
  let app1 name a = paren 5 (fun ppf -> Fmt.pf ppf "%s %a" name (pp 6) a) in
  let app2 name a b =
    paren 5 (fun ppf -> Fmt.pf ppf "%s %a %a" name (pp 6) a (pp 6) b)
  in
  match m with
  | Var x -> Fmt.string ppf x
  | Lam _ ->
      let rec gather xs = function
        | Lam (x, body) -> gather (x :: xs) body
        | body -> (List.rev xs, body)
      in
      let xs, body = gather [] m in
      paren 0 (fun ppf ->
          Fmt.pf ppf "@[<2>\\%a ->@ %a@]"
            Fmt.(list ~sep:sp string)
            xs (pp 0) body)
  | App (a, b) ->
      paren 5 (fun ppf -> Fmt.pf ppf "@[<2>%a@ %a@]" (pp 5) a (pp 6) b)
  | Con (c, []) -> Fmt.string ppf c
  | Con ("(,)", [ a; b ]) -> Fmt.pf ppf "(%a, %a)" (pp 0) a (pp 0) b
  | Con (c, ms) ->
      paren 5 (fun ppf ->
          Fmt.pf ppf "@[<2>%s@ %a@]" c Fmt.(list ~sep:sp (pp 6)) ms)
  | Lit_int i -> if i < 0 then Fmt.pf ppf "(%d)" i else Fmt.int ppf i
  | Lit_char c -> pp_char_lit ppf c
  | Lit_exn e -> Fmt.pf ppf "#%s" e
  | Mvar i -> Fmt.pf ppf "%%m%d" i
  | Tid t -> Fmt.pf ppf "%%t%d" t
  | Prim (op, a, b) ->
      let lvl = prim_level op in
      (* Comparisons are non-associative in the grammar, so both operands
         need a higher level; arithmetic is left-associative. *)
      let left_lvl = if lvl = 2 then lvl + 1 else lvl in
      paren lvl (fun ppf ->
          Fmt.pf ppf "@[<2>%a %a@ %a@]" (pp left_lvl) a pp_prim_op op
            (pp (lvl + 1)) b)
  | If (c, t, e) ->
      paren 0 (fun ppf ->
          Fmt.pf ppf "@[<2>if %a@ then %a@ else %a@]" (pp 1) c (pp 1) t (pp 0)
            e)
  | Case (s, alts) ->
      paren 0 (fun ppf ->
          Fmt.pf ppf "@[<2>case %a of {@ %a }@]" (pp 1) s
            Fmt.(list ~sep:(any ";@ ") pp_alt)
            alts)
  | Let (x, Fix (Lam (f, def)), body) when String.equal x f ->
      paren 0 (fun ppf ->
          Fmt.pf ppf "@[<2>let rec %s =@ %a in@ %a@]" x (pp 1) def (pp 0) body)
  | Let (x, def, body) ->
      paren 0 (fun ppf ->
          Fmt.pf ppf "@[<2>let %s =@ %a in@ %a@]" x (pp 1) def (pp 0) body)
  | Fix a -> app1 "fix" a
  | Raise a -> app1 "raise" a
  | Return a -> app1 "return" a
  | Bind (a, b) ->
      paren 1 (fun ppf -> Fmt.pf ppf "@[<2>%a >>=@ %a@]" (pp 1) a (pp 2) b)
  | Put_char a -> app1 "putChar" a
  | Get_char -> Fmt.string ppf "getChar"
  | New_mvar -> Fmt.string ppf "newEmptyMVar"
  | Take_mvar a -> app1 "takeMVar" a
  | Put_mvar (a, b) -> app2 "putMVar" a b
  | Sleep a -> app1 "sleep" a
  | Throw a -> app1 "throw" a
  | Catch (a, b) -> app2 "catch" a b
  | Throw_to (a, b) -> app2 "throwTo" a b
  | Block a -> app1 "block" a
  | Unblock a -> app1 "unblock" a
  | Fork a -> app1 "forkIO" a
  | My_tid -> Fmt.string ppf "myThreadId"

and pp_alt ppf = function
  | Alt (c, [], body) -> Fmt.pf ppf "@[<2>%s ->@ %a@]" c (pp 0) body
  | Alt (c, xs, body) ->
      Fmt.pf ppf "@[<2>%s %a ->@ %a@]" c
        Fmt.(list ~sep:sp string)
        xs (pp 0) body
  | Default (x, body) -> Fmt.pf ppf "@[<2>%s ->@ %a@]" x (pp 0) body

let pp_term = pp 0
let term_to_string m = Fmt.str "%a" pp_term m
