(** Hand-written lexer for the surface syntax (a tiny Haskell: do-notation
    with explicit braces, lambdas, [let]/[let rec], [if], [case], operators
    [>>=], [>>], arithmetic and comparisons, [--] line comments and nested
    [{- -}] block comments). *)

type token =
  | INT of int
  | CHAR of char
  | LIDENT of string
  | UIDENT of string  (** constructor name *)
  | EXN of string  (** [#Name], an exception constant *)
  | STRING of string
      (** ["..."], desugared by the parser to a [Cons]/[Nil] list of
          character literals *)
  | MVAR_NAME of int  (** [%m3], a runtime MVar name *)
  | TID_NAME of int  (** [%t3], a runtime thread name *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | SEMI
  | COMMA
  | BACKSLASH
  | ARROW  (** [->] *)
  | LARROW  (** [<-] *)
  | EQUALS
  | OP_BIND  (** [>>=] *)
  | OP_THEN  (** [>>] *)
  | OP_PLUS
  | OP_MINUS
  | OP_STAR
  | OP_SLASH
  | OP_EQ  (** [==] *)
  | OP_NE  (** [/=] *)
  | OP_LT
  | OP_LE
  | KW_LET
  | KW_REC
  | KW_IN
  | KW_IF
  | KW_THEN
  | KW_ELSE
  | KW_CASE
  | KW_OF
  | KW_DO
  | EOF

exception Lex_error of { line : int; col : int; message : string }

type located = { token : token; line : int; col : int }

val tokenize : string -> located list
(** Tokenize a whole source string; the result always ends with {!EOF}.
    @raise Lex_error on malformed input. *)

val token_to_string : token -> string
