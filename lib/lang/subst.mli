(** Capture-avoiding substitution over {!Term.term}.

    The inner semantics is call-by-name: [App (Lam (x, body), arg)] steps to
    [subst body x arg] with [arg] unevaluated, so substitution is the
    workhorse of evaluation. Bound variables that would capture a free
    variable of the substituted term are freshened with {!fresh}. *)

val fresh : string -> string
(** A variable name not produced by any previous call, derived from the
    given base name (e.g. [fresh "x"] gives ["x'3"]). *)

val subst : Term.term -> Term.var -> Term.term -> Term.term
(** [subst body x arg] is [body\[arg/x\]]. *)

val subst_many : Term.term -> (Term.var * Term.term) list -> Term.term
(** Simultaneous substitution, used for [case] alternatives binding several
    variables at once. *)

val rename_names :
  mvar_of:(int -> int) -> tid_of:(int -> int) -> Term.term -> Term.term
(** Rename every MVar name and thread name in the term. Used by the state
    canonicalizer implementing structural congruence (Figure 3). *)
