(** Capture-avoiding substitution over {!Term.term}.

    The inner semantics is call-by-name: [App (Lam (x, body), arg)] steps to
    [subst body x arg] with [arg] unevaluated, so substitution is the
    workhorse of evaluation. Bound variables that would capture a free
    variable of the substituted term are freshened with {!fresh}. *)

val fresh : avoid:Term.var list -> string -> string
(** A variable name derived from the given base (e.g.
    [fresh ~avoid "x"] gives ["x'1"]) that does not occur in [avoid].
    Pure: the result depends only on the arguments — there is no global
    freshness counter — so substitution is deterministic regardless of
    evaluation order and safe to run on several domains at once. *)

val subst : Term.term -> Term.var -> Term.term -> Term.term
(** [subst body x arg] is [body\[arg/x\]]. *)

val subst_many : Term.term -> (Term.var * Term.term) list -> Term.term
(** Simultaneous substitution, used for [case] alternatives binding several
    variables at once. *)

val rename_names :
  mvar_of:(int -> int) -> tid_of:(int -> int) -> Term.term -> Term.term
(** Rename every MVar name and thread name in the term. Used by the state
    canonicalizer implementing structural congruence (Figure 3). *)
