type token =
  | INT of int
  | CHAR of char
  | LIDENT of string
  | UIDENT of string
  | EXN of string
  | STRING of string
  | MVAR_NAME of int
  | TID_NAME of int
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | SEMI
  | COMMA
  | BACKSLASH
  | ARROW
  | LARROW
  | EQUALS
  | OP_BIND
  | OP_THEN
  | OP_PLUS
  | OP_MINUS
  | OP_STAR
  | OP_SLASH
  | OP_EQ
  | OP_NE
  | OP_LT
  | OP_LE
  | KW_LET
  | KW_REC
  | KW_IN
  | KW_IF
  | KW_THEN
  | KW_ELSE
  | KW_CASE
  | KW_OF
  | KW_DO
  | EOF

exception Lex_error of { line : int; col : int; message : string }

type located = { token : token; line : int; col : int }

let keyword_of_string = function
  | "let" -> Some KW_LET
  | "rec" -> Some KW_REC
  | "in" -> Some KW_IN
  | "if" -> Some KW_IF
  | "then" -> Some KW_THEN
  | "else" -> Some KW_ELSE
  | "case" -> Some KW_CASE
  | "of" -> Some KW_OF
  | "do" -> Some KW_DO
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || c = '_'
let is_upper c = c >= 'A' && c <= 'Z'

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

let is_digit c = c >= '0' && c <= '9'

type cursor = { src : string; mutable pos : int; mutable line : int;
                mutable col : int }

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos]
               else None

let peek2 cur =
  if cur.pos + 1 < String.length cur.src then Some cur.src.[cur.pos + 1]
  else None

let advance cur =
  (match peek cur with
  | Some '\n' ->
      cur.line <- cur.line + 1;
      cur.col <- 1
  | Some _ -> cur.col <- cur.col + 1
  | None -> ());
  cur.pos <- cur.pos + 1

let error cur message = raise (Lex_error { line = cur.line; col = cur.col;
                                           message })

let take_while cur pred =
  let start = cur.pos in
  let rec go () =
    match peek cur with
    | Some c when pred c ->
        advance cur;
        go ()
    | Some _ | None -> ()
  in
  go ();
  String.sub cur.src start (cur.pos - start)

(* Skips whitespace, [--] line comments and nested [{- -}] block comments. *)
let rec skip_trivia cur =
  match peek cur with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance cur;
      skip_trivia cur
  | Some '-' when peek2 cur = Some '-' ->
      let rec to_eol () =
        match peek cur with
        | Some '\n' | None -> ()
        | Some _ ->
            advance cur;
            to_eol ()
      in
      to_eol ();
      skip_trivia cur
  | Some '{' when peek2 cur = Some '-' ->
      advance cur;
      advance cur;
      let rec block depth =
        match (peek cur, peek2 cur) with
        | Some '-', Some '}' ->
            advance cur;
            advance cur;
            if depth > 1 then block (depth - 1)
        | Some '{', Some '-' ->
            advance cur;
            advance cur;
            block (depth + 1)
        | Some _, _ ->
            advance cur;
            block depth
        | None, _ -> error cur "unterminated block comment"
      in
      block 1;
      skip_trivia cur
  | Some _ | None -> ()

let char_literal cur =
  (* Opening quote already consumed. *)
  let c =
    match peek cur with
    | Some '\\' -> (
        advance cur;
        match peek cur with
        | Some 'n' ->
            advance cur;
            '\n'
        | Some 't' ->
            advance cur;
            '\t'
        | Some '\\' ->
            advance cur;
            '\\'
        | Some '\'' ->
            advance cur;
            '\''
        | Some c -> error cur (Printf.sprintf "bad escape '\\%c'" c)
        | None -> error cur "unterminated character literal")
    | Some c ->
        advance cur;
        c
    | None -> error cur "unterminated character literal"
  in
  match peek cur with
  | Some '\'' ->
      advance cur;
      c
  | Some _ | None -> error cur "expected closing quote in character literal"

let next_token cur =
  skip_trivia cur;
  let line = cur.line and col = cur.col in
  let emit token = { token; line; col } in
  match peek cur with
  | None -> emit EOF
  | Some c when is_digit c -> emit (INT (int_of_string (take_while cur is_digit)))
  | Some c when is_ident_start c ->
      let word = take_while cur is_ident_char in
      emit
        (match keyword_of_string word with
        | Some kw -> kw
        | None -> LIDENT word)
  | Some c when is_upper c -> emit (UIDENT (take_while cur is_ident_char))
  | Some '#' -> (
      advance cur;
      match peek cur with
      | Some c when is_upper c -> emit (EXN (take_while cur is_ident_char))
      | Some _ | None -> error cur "expected exception name after '#'")
  | Some '%' -> (
      advance cur;
      match peek cur with
      | Some (('m' | 't') as kind) -> (
          advance cur;
          match take_while cur is_digit with
          | "" -> error cur "expected digits after '%m' / '%t'"
          | digits ->
              let n = int_of_string digits in
              emit (if kind = 'm' then MVAR_NAME n else TID_NAME n))
      | Some _ | None -> error cur "expected 'm' or 't' after '%'")
  | Some '\'' ->
      advance cur;
      emit (CHAR (char_literal cur))
  | Some '"' ->
      advance cur;
      let buf = Buffer.create 16 in
      let rec chars () =
        match peek cur with
        | Some '"' -> advance cur
        | Some '\\' -> (
            advance cur;
            match peek cur with
            | Some 'n' ->
                advance cur;
                Buffer.add_char buf '\n';
                chars ()
            | Some 't' ->
                advance cur;
                Buffer.add_char buf '\t';
                chars ()
            | Some '\\' ->
                advance cur;
                Buffer.add_char buf '\\';
                chars ()
            | Some '"' ->
                advance cur;
                Buffer.add_char buf '"';
                chars ()
            | Some c -> error cur (Printf.sprintf "bad escape '\\%c'" c)
            | None -> error cur "unterminated string literal")
        | Some c ->
            advance cur;
            Buffer.add_char buf c;
            chars ()
        | None -> error cur "unterminated string literal"
      in
      chars ();
      emit (STRING (Buffer.contents buf))
  | Some '(' ->
      advance cur;
      emit LPAREN
  | Some ')' ->
      advance cur;
      emit RPAREN
  | Some '{' ->
      advance cur;
      emit LBRACE
  | Some '}' ->
      advance cur;
      emit RBRACE
  | Some ';' ->
      advance cur;
      emit SEMI
  | Some ',' ->
      advance cur;
      emit COMMA
  | Some '\\' ->
      advance cur;
      emit BACKSLASH
  | Some '+' ->
      advance cur;
      emit OP_PLUS
  | Some '*' ->
      advance cur;
      emit OP_STAR
  | Some '-' -> (
      advance cur;
      match peek cur with
      | Some '>' ->
          advance cur;
          emit ARROW
      | Some _ | None -> emit OP_MINUS)
  | Some '/' -> (
      advance cur;
      match peek cur with
      | Some '=' ->
          advance cur;
          emit OP_NE
      | Some _ | None -> emit OP_SLASH)
  | Some '=' -> (
      advance cur;
      match peek cur with
      | Some '=' ->
          advance cur;
          emit OP_EQ
      | Some _ | None -> emit EQUALS)
  | Some '>' -> (
      advance cur;
      match peek cur with
      | Some '>' -> (
          advance cur;
          match peek cur with
          | Some '=' ->
              advance cur;
              emit OP_BIND
          | Some _ | None -> emit OP_THEN)
      | Some _ | None -> error cur "expected '>>' or '>>='")
  | Some '<' -> (
      advance cur;
      match peek cur with
      | Some '=' ->
          advance cur;
          emit OP_LE
      | Some '-' ->
          advance cur;
          emit LARROW
      | Some _ | None -> emit OP_LT)
  | Some c -> error cur (Printf.sprintf "unexpected character %C" c)

let tokenize src =
  let cur = { src; pos = 0; line = 1; col = 1 } in
  let rec go acc =
    let tok = next_token cur in
    match tok.token with
    | EOF -> List.rev (tok :: acc)
    | _ -> go (tok :: acc)
  in
  go []

let token_to_string = function
  | INT i -> string_of_int i
  | CHAR c -> Printf.sprintf "%C" c
  | LIDENT s | UIDENT s -> s
  | EXN s -> "#" ^ s
  | STRING s -> Printf.sprintf "%S" s
  | MVAR_NAME n -> Printf.sprintf "%%m%d" n
  | TID_NAME n -> Printf.sprintf "%%t%d" n
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | SEMI -> ";"
  | COMMA -> ","
  | BACKSLASH -> "\\"
  | ARROW -> "->"
  | LARROW -> "<-"
  | EQUALS -> "="
  | OP_BIND -> ">>="
  | OP_THEN -> ">>"
  | OP_PLUS -> "+"
  | OP_MINUS -> "-"
  | OP_STAR -> "*"
  | OP_SLASH -> "/"
  | OP_EQ -> "=="
  | OP_NE -> "/="
  | OP_LT -> "<"
  | OP_LE -> "<="
  | KW_LET -> "let"
  | KW_REC -> "rec"
  | KW_IN -> "in"
  | KW_IF -> "if"
  | KW_THEN -> "then"
  | KW_ELSE -> "else"
  | KW_CASE -> "case"
  | KW_OF -> "of"
  | KW_DO -> "do"
  | EOF -> "<eof>"
