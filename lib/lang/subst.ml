open Term

(* Freshness is pure: the chosen name depends only on [avoid], never on
   evaluation history. A global counter would make renamed terms depend
   on every substitution performed before (breaking witness-path
   determinism) and its non-atomic increment would race when the sweep
   and the explorer run evaluations on several domains at once. *)
let fresh ~avoid base =
  (* Strip a previous freshness suffix so repeated freshening stays short. *)
  let base =
    match String.index_opt base '\'' with
    | Some i -> String.sub base 0 i
    | None -> base
  in
  let rec pick i =
    let candidate = Printf.sprintf "%s'%d" base i in
    if List.mem candidate avoid then pick (i + 1) else candidate
  in
  pick 1

let rec subst_many body pairs =
  match pairs with
  | [] -> body
  | _ ->
      let fvs = List.concat_map (fun (_, arg) -> free_vars arg) pairs in
      go fvs pairs body

(* [go fvs pairs m] substitutes simultaneously; [fvs] over-approximates the
   free variables of all substituted terms, so any binder in [fvs] must be
   renamed before descending. *)
and go fvs pairs m =
  let drop x = List.filter (fun (y, _) -> not (String.equal x y)) pairs in
  match m with
  | Var x -> (
      match List.assoc_opt x pairs with Some arg -> arg | None -> m)
  | Lam (x, body) ->
      let pairs' = drop x in
      if pairs' = [] then m
      else if List.mem x fvs then begin
        let x' = fresh ~avoid:(fvs @ free_vars body) x in
        Lam (x', go fvs pairs' (go [ x' ] [ (x, Var x') ] body))
      end
      else Lam (x, go fvs pairs' body)
  | App (a, b) -> App (go fvs pairs a, go fvs pairs b)
  | Con (c, ms) -> Con (c, List.map (go fvs pairs) ms)
  | Lit_int _ | Lit_char _ | Lit_exn _ | Mvar _ | Tid _ | Get_char | New_mvar
  | My_tid ->
      m
  | Prim (op, a, b) -> Prim (op, go fvs pairs a, go fvs pairs b)
  | If (c, t, e) -> If (go fvs pairs c, go fvs pairs t, go fvs pairs e)
  | Case (s, alts) ->
      let subst_alt = function
        | Alt (c, xs, body) ->
            let pairs' =
              List.filter (fun (y, _) -> not (List.mem y xs)) pairs
            in
            if pairs' = [] then Alt (c, xs, body)
            else if List.exists (fun x -> List.mem x fvs) xs then begin
              let avoid0 = fvs @ free_vars body in
              let renaming =
                List.fold_left
                  (fun acc x ->
                    let taken = List.map snd acc in
                    acc @ [ (x, fresh ~avoid:(taken @ avoid0) x) ])
                  [] xs
              in
              let body' =
                go
                  (List.map snd renaming)
                  (List.map (fun (x, x') -> (x, Var x')) renaming)
                  body
              in
              Alt (c, List.map snd renaming, go fvs pairs' body')
            end
            else Alt (c, xs, go fvs pairs' body)
        | Default (x, body) ->
            let pairs' = drop x in
            if pairs' = [] then Default (x, body)
            else if List.mem x fvs then begin
              let x' = fresh ~avoid:(fvs @ free_vars body) x in
              Default (x', go fvs pairs' (go [ x' ] [ (x, Var x') ] body))
            end
            else Default (x, go fvs pairs' body)
      in
      Case (go fvs pairs s, List.map subst_alt alts)
  | Let (x, def, body) ->
      let def' = go fvs pairs def in
      let pairs' = drop x in
      if pairs' = [] then Let (x, def', body)
      else if List.mem x fvs then begin
        let x' = fresh ~avoid:(fvs @ free_vars body) x in
        Let (x', def', go fvs pairs' (go [ x' ] [ (x, Var x') ] body))
      end
      else Let (x, def', go fvs pairs' body)
  | Fix a -> Fix (go fvs pairs a)
  | Raise a -> Raise (go fvs pairs a)
  | Return a -> Return (go fvs pairs a)
  | Bind (a, b) -> Bind (go fvs pairs a, go fvs pairs b)
  | Put_char a -> Put_char (go fvs pairs a)
  | Take_mvar a -> Take_mvar (go fvs pairs a)
  | Put_mvar (a, b) -> Put_mvar (go fvs pairs a, go fvs pairs b)
  | Sleep a -> Sleep (go fvs pairs a)
  | Throw a -> Throw (go fvs pairs a)
  | Catch (a, b) -> Catch (go fvs pairs a, go fvs pairs b)
  | Throw_to (a, b) -> Throw_to (go fvs pairs a, go fvs pairs b)
  | Block a -> Block (go fvs pairs a)
  | Unblock a -> Unblock (go fvs pairs a)
  | Fork a -> Fork (go fvs pairs a)

let subst body x arg = subst_many body [ (x, arg) ]

let rec rename_names ~mvar_of ~tid_of m =
  let r = rename_names ~mvar_of ~tid_of in
  match m with
  | Var _ | Lit_int _ | Lit_char _ | Lit_exn _ | Get_char | New_mvar | My_tid
    ->
      m
  | Mvar i -> Mvar (mvar_of i)
  | Tid t -> Tid (tid_of t)
  | Lam (x, a) -> Lam (x, r a)
  | App (a, b) -> App (r a, r b)
  | Con (c, ms) -> Con (c, List.map r ms)
  | Prim (op, a, b) -> Prim (op, r a, r b)
  | If (c, t, e) -> If (r c, r t, r e)
  | Case (s, alts) ->
      Case
        ( r s,
          List.map
            (function
              | Alt (c, xs, b) -> Alt (c, xs, r b)
              | Default (x, b) -> Default (x, r b))
            alts )
  | Let (x, a, b) -> Let (x, r a, r b)
  | Fix a -> Fix (r a)
  | Raise a -> Raise (r a)
  | Return a -> Return (r a)
  | Bind (a, b) -> Bind (r a, r b)
  | Put_char a -> Put_char (r a)
  | Take_mvar a -> Take_mvar (r a)
  | Put_mvar (a, b) -> Put_mvar (r a, r b)
  | Sleep a -> Sleep (r a)
  | Throw a -> Throw (r a)
  | Catch (a, b) -> Catch (r a, r b)
  | Throw_to (a, b) -> Throw_to (r a, r b)
  | Block a -> Block (r a)
  | Unblock a -> Unblock (r a)
  | Fork a -> Fork (r a)
