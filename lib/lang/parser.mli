(** Recursive-descent parser for the surface syntax.

    Grammar (loosest binding first):
    {v
    expr  ::= \ x1 .. xn -> expr
            | let [rec] x = expr in expr
            | if expr then expr else expr
            | case expr of { alt ; ... }
            | do { stmt ; ... ; expr }
            | bind
    bind  ::= cmp ((">>=" | ">>") cmp)*          -- a lambda/let/if/case/do
                                                 -- as right operand extends
                                                 -- to the end of the input
    cmp   ::= add [("==" | "/=" | "<" | "<=") add]
    add   ::= mul (("+" | "-") mul)*
    mul   ::= app (("*" | "/") app)*
    app   ::= atom+
    atom  ::= int | 'c' | #Exn | ident | Con | () | (expr) | (expr, expr)
    stmt  ::= x <- expr | let x = expr | expr
    alt   ::= Con x1 .. xn -> expr | x -> expr
    v}

    The primitive names [return], [raise], [fix], [putChar], [getChar],
    [newEmptyMVar], [takeMVar], [putMVar], [sleep], [throw], [catch],
    [throwTo], [block], [unblock], [forkIO], [myThreadId] are reserved: they
    parse to the corresponding {!Term.term} constructors, eta-expanded when
    partially applied. *)

exception
  Parse_error of { line : int; col : int; message : string }

val parse : string -> Term.term
(** Parse a complete program.
    @raise Parse_error on syntax errors,
    @raise Lexer.Lex_error on lexical errors. *)

val is_builtin : string -> bool
(** Whether the identifier is one of the reserved primitive names. *)
