(** Pretty-printer for terms, producing the concrete syntax accepted by
    {!Parser} (so that [parse (print m)] round-trips modulo sugar). *)

val pp_term : Format.formatter -> Term.term -> unit
val term_to_string : Term.term -> string

val pp_prim_op : Format.formatter -> Term.prim_op -> unit
