#!/bin/sh
# Bench-regression gate: re-measure a bench group and compare every op's
# fresh OLS estimate against the checked-in baseline_estimates_ns of the
# matching BENCH_*.json. An op more than FACTOR x slower than its
# baseline fails the gate (exit 1); ops present in the baseline but
# missing from the fresh run fail too (a renamed bench must update its
# baseline in the same PR). A markdown comparison table is always
# written for the CI artifact / job summary.
#
# usage: scripts/bench_check.sh [-f FACTOR] [-q QUOTA] [-o TABLE.md] BASELINE.json GROUP
#   FACTOR   slowdown ratio that fails, default 2.0
#   QUOTA    per-test bechamel quota in seconds, default 1
#   TABLE.md where to append the markdown table, default bench_table.md
#
# e.g.  scripts/bench_check.sh -o table.md BENCH_scheduler.json sc
#       scripts/bench_check.sh -o table.md BENCH_domains.json dom
#       scripts/bench_check.sh -o table.md BENCH_overload.json ovl
#
# The baselines were recorded on a single-core container; CI runners are
# a different machine class, so the gate is meaningful only against
# baselines recorded on comparable hardware — re-record (bench/main.exe
# -json) and commit when the runner class changes.

set -eu

FACTOR=2.0
QUOTA=1
TABLE=bench_table.md
while getopts f:q:o: opt; do
  case $opt in
    f) FACTOR=$OPTARG ;;
    q) QUOTA=$OPTARG ;;
    o) TABLE=$OPTARG ;;
    *) echo "usage: $0 [-f FACTOR] [-q QUOTA] [-o TABLE.md] BASELINE.json GROUP" >&2; exit 2 ;;
  esac
done
shift $((OPTIND - 1))
[ $# -eq 2 ] || { echo "usage: $0 [-f FACTOR] [-q QUOTA] [-o TABLE.md] BASELINE.json GROUP" >&2; exit 2; }
BASELINE=$1
GROUP=$2

command -v jq >/dev/null || { echo "bench_check: jq not found" >&2; exit 2; }
jq -e '.baseline_estimates_ns' "$BASELINE" >/dev/null || {
  echo "bench_check: $BASELINE has no baseline_estimates_ns object" >&2; exit 2; }

FRESH=$(mktemp)
trap 'rm -f "$FRESH"' EXIT

echo "bench_check: measuring group '$GROUP' (quota ${QUOTA}s) against $BASELINE"
dune exec bench/main.exe -- -only "$GROUP" -quota "$QUOTA" -json "$FRESH" >/dev/null

# One row per baseline op: "name baseline_ns fresh_ns" (fresh_ns = "missing"
# when the op vanished from the bench binary).
ROWS=$(jq -r --slurpfile fresh "$FRESH" '
  .baseline_estimates_ns | to_entries[] |
  "\(.key) \(.value) \($fresh[0].estimates[.key] // "missing")"' "$BASELINE")

{
  echo ""
  echo "### bench_check: $GROUP vs $BASELINE (fail at >${FACTOR}x)"
  echo ""
  echo "| op | baseline | fresh | ratio | status |"
  echo "|---|---:|---:|---:|---|"
} >>"$TABLE"

FAIL=0
while read -r name base fresh; do
  [ -n "$name" ] || continue
  if [ "$fresh" = "missing" ]; then
    echo "| $name | $(printf '%s' "$base" | awk '{printf "%.2f ms", $1/1e6}') | missing | — | FAIL (op vanished) |" >>"$TABLE"
    echo "bench_check: FAIL $name: present in baseline, missing from fresh run" >&2
    FAIL=1
    continue
  fi
  LINE=$(awk -v b="$base" -v f="$fresh" -v limit="$FACTOR" 'BEGIN {
    ratio = f / b
    status = (ratio > limit) ? "FAIL" : "ok"
    printf "%.2f ms|%.2f ms|%.2fx|%s", b/1e6, f/1e6, ratio, status
  }')
  RATIO=${LINE%|*}; RATIO=${RATIO##*|}
  STATUS=${LINE##*|}
  echo "| $name | $(echo "$LINE" | cut -d'|' -f1) | $(echo "$LINE" | cut -d'|' -f2) | $RATIO | $STATUS |" >>"$TABLE"
  if [ "$STATUS" = "FAIL" ]; then
    echo "bench_check: FAIL $name: $RATIO slower than baseline (limit ${FACTOR}x)" >&2
    FAIL=1
  else
    echo "bench_check: ok   $name ($RATIO)"
  fi
done <<EOF
$ROWS
EOF

if [ "$FAIL" -ne 0 ]; then
  echo "bench_check: group '$GROUP' REGRESSED (see $TABLE)" >&2
  exit 1
fi
echo "bench_check: group '$GROUP' within ${FACTOR}x of baseline"
