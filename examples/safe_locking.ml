(* The §5.1/§5.2 story, told twice:

   1. On the hio runtime: an adversary kills a lock-holding worker at every
      possible moment; the unprotected protocol loses the lock on some
      schedules, the block-protected protocol never does.

   2. On the executable formal semantics: the model checker explores ALL
      schedules of the same programs and prints the verdicts, including a
      concrete doomed schedule for the unsafe protocol.

   Run with: dune exec examples/safe_locking.exe *)

open Hio
open Hio.Io

(* --- Part 1: runtime sweep ---------------------------------------------- *)

let unprotected_update m =
  Mvar.take m >>= fun x ->
  yield >>= fun () -> Mvar.put m (x + 1)

let protected_update m = Mvar.modify m (fun x -> return (x + 1))

let sweep name update =
  let outcomes = Hashtbl.create 8 in
  for k = 0 to 25 do
    let prog =
      Mvar.new_filled 0 >>= fun m ->
      fork (update m) >>= fun t ->
      Hio_std.Combinators.repeat k yield >>= fun () ->
      throw_to t Kill_thread >>= fun () -> Mvar.take m
    in
    let key =
      match (Runtime.run prog).Runtime.outcome with
      | Runtime.Value v -> Printf.sprintf "lock intact, value %d" v
      | Runtime.Deadlock -> "LOCK LOST (deadlock)"
      | Runtime.Uncaught _ -> "uncaught"
      | Runtime.Out_of_steps -> "out of steps"
    in
    let n = try Hashtbl.find outcomes key with Not_found -> 0 in
    Hashtbl.replace outcomes key (n + 1)
  done;
  Printf.printf "%s (kill injected at 26 points):\n" name;
  Hashtbl.iter (fun k n -> Printf.printf "  %2d x %s\n" n k) outcomes;
  print_newline ()

(* --- Part 2: exhaustive model checking ---------------------------------- *)

let model_check name protocol =
  let open Ch_semantics in
  let open Ch_explore in
  let config = { Step.default_config with Step.stuck_io = false } in
  let program = Ch_corpus.Locking.harness protocol in
  let result = Space.explore ~config (State.initial program) in
  Printf.printf "%s: %d states, %d transitions\n" name result.Space.visited
    result.Space.edges;
  List.iter
    (fun kind -> Fmt.pr "  terminal: %a@." Space.pp_terminal_kind kind)
    (Space.terminal_kinds result);
  (match
     List.find_opt
       (fun t -> t.Space.kind = Space.Deadlock)
       result.Space.terminals
   with
  | Some witness ->
      Fmt.pr "  a doomed schedule (%d steps):@."
        (List.length witness.Space.path);
      List.iteri
        (fun i (tr : Step.transition) ->
          if i < 14 then
            Fmt.pr "    %2d. %s@." (i + 1) (Step.rule_name tr.Step.rule))
        witness.Space.path;
      if List.length witness.Space.path > 14 then Fmt.pr "    ...@."
  | None -> Fmt.pr "  no deadlocking schedule exists.@.");
  print_newline ()

let () =
  print_endline "=== Part 1: adversarial sweep on the hio runtime ===\n";
  sweep "unprotected  take;compute;put " unprotected_update;
  sweep "protected    Mvar.modify (§5.2)" protected_update;
  print_endline "=== Part 2: exhaustive model check of the semantics ===\n";
  model_check "unprotected (§5.1 naive)  " Ch_corpus.Locking.unprotected;
  model_check "catch-only  (§5.1 fixed?) " Ch_corpus.Locking.catch_only;
  model_check "block+catch (§5.2)        " Ch_corpus.Locking.block_protected
