(* Supervision in action: the resilience layer (lib/sup) around the §11
   server and around a flaky downstream call.

   Three stories in one run:
   1. a supervised worker pool — one worker is killed mid-request and the
      client still gets an answer (a 503, never silence), the supervisor
      restarts the slot, and the server keeps serving;
   2. saturation — more clients than capacity + waiting room, so the
      bulkhead sheds the overflow with immediate 503s instead of growing
      an unbounded queue;
   3. retry + circuit breaker over a flaky operation — deterministic
      exponential backoff rides the virtual clock, the breaker trips
      after repeated failures, fails fast while open, and closes again
      after its reset window.

   Run with: dune exec examples/supervised_server.exe *)

open Hio
open Hio_std
open Hio.Io.Syntax
open Hio.Io
open Hserver
open Hsup

let handler request =
  match request.Http.path with
  | "/slow" ->
      (* slow enough that the kill below lands mid-handler *)
      let* () = sleep 200 in
      return (Http.ok "done")
  | _ -> return (Http.ok "index")

let get server id path =
  let* conn = Server.connect server in
  let* () =
    Http.write_request conn { Http.meth = "GET"; path; headers = []; body = "" }
  in
  let* r = Http.read_response conn in
  put_string
    (Printf.sprintf "  client %-2d %-6s -> %d %s\n" id path r.Http.status
       r.Http.body)

(* --- 1 + 2: the supervised server under a kill and under load ----------- *)

let server_story =
  let* server =
    Server.start
      ~backend:(Ev.Backend.sim ())
      ~config:
        {
          Server.default_config with
          max_concurrent = 2;
          max_waiting = 1;
          request_timeout = 400;
        }
      handler
  in
  let* () = put_string "supervised server up\n" in
  (* a victim request: wait until its worker is mid-handler, kill it *)
  let* victim = Task.spawn ~name:"victim" (get server 0 "/slow") in
  let sup = Option.get (Server.supervisor server) in
  let rec wait_worker () =
    let* up = Sup.child_up sup "conn-worker" in
    if up then return () else yield >>= wait_worker
  in
  let* () = wait_worker () in
  let* () = sleep 50 in
  let* tid = Sup.child_tid sup "conn-worker" in
  let* () = throw_to (Option.get tid) Kill_thread in
  let* () = put_string "killed a conn-worker mid-request\n" in
  let* () = catch (Task.await victim) (fun _ -> return ()) in
  (* now saturate: 5 clients against capacity 2 + 1 waiting *)
  let* tasks =
    Combinators.parallel_map Task.spawn
      [ get server 1 "/"; get server 2 "/"; get server 3 "/";
        get server 4 "/"; get server 5 "/" ]
  in
  let rec wait_all = function
    | [] -> return ()
    | t :: rest ->
        let* () = catch (Task.await t) (fun _ -> return ()) in
        wait_all rest
  in
  let* () = wait_all tasks in
  let* stats = Server.shutdown server in
  put_string
    (Printf.sprintf "shutdown: served=%d shed=%d restarts=%d\n"
       stats.Server.served stats.Server.shed stats.Server.restarts)

(* --- 3: retry + breaker over a flaky downstream -------------------------- *)

let breaker_story =
  let* calls = lift (fun () -> ref 0) in
  let* br = Breaker.create ~failure_threshold:2 ~reset_timeout:200 () in
  let flaky =
    let* n = lift (fun () -> incr calls; !calls) in
    if n <= 3 then throw (Failure "downstream down") else return n
  in
  let attempt label =
    catch
      (let* v = Breaker.run br flaky in
       put_string (Printf.sprintf "  %s -> ok (call %d)\n" label v))
      (function
        | Breaker.Open_circuit ->
            put_string (Printf.sprintf "  %s -> rejected (breaker open)\n" label)
        | e -> put_string (Printf.sprintf "  %s -> %s\n" label (Printexc.to_string e)))
  in
  let* () = put_string "flaky downstream behind retry + breaker:\n" in
  (* two failures trip the breaker open *)
  let* () = attempt "call 1" in
  let* () = attempt "call 2" in
  let* st = Breaker.state br in
  let* () =
    put_string
      (Printf.sprintf "  breaker is %s\n"
         (match st with
         | Breaker.Open -> "open"
         | Breaker.Half_open -> "half-open"
         | Breaker.Closed -> "closed"))
  in
  (* while open, calls fail fast — no work reaches the downstream *)
  let* () = attempt "call 3" in
  (* retry with deterministic backoff outlives the reset window: its
     later attempts find the breaker half-open, probe, and succeed *)
  let* () =
    Retry.retry ~attempts:6 ~base:50 ~factor:2 ~jitter:4
      (let* v = Breaker.run br flaky in
       put_string (Printf.sprintf "  retry -> ok (call %d)\n" v))
  in
  let* st = Breaker.state br in
  let* now_us = now in
  put_string
    (Printf.sprintf "  breaker closed again: %b (virtual time %dus)\n"
       (st = Breaker.Closed) now_us)

let main =
  let* () = server_story in
  breaker_story

let () =
  let r = Runtime.run main in
  print_string r.Runtime.output;
  Printf.printf "(steps=%d, threads=%d, virtual time=%dus)\n" r.Runtime.steps
    r.Runtime.forks r.Runtime.time
