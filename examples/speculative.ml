(* Speculative computation — the paper's first motivation for asynchronous
   exceptions: "A parent thread might start a child thread to compute some
   value speculatively; later the parent may decide it does not need the
   value so it may want to kill the child thread."

   We search for a satisfying assignment of a small puzzle with three
   different strategies racing in parallel; the first to answer wins and
   the others are killed mid-flight. Then we run a portfolio where the
   parent abandons the entire search when a cheap heuristic answers first.

   Run with: dune exec examples/speculative.exe *)

open Hio
open Hio_std
open Hio.Io.Syntax
open Hio.Io

(* The "puzzle": find n in [lo, hi) with  n*n mod 9973 = target.  Each probe
   costs one virtual microsecond, so strategies differ only in their
   search order. *)
let target = 6_860
let matches n = n * n mod 9973 = target

let probe n =
  let* () = sleep 1 in
  return (matches n)

let rec search name order = function
  | [] -> return None
  | n :: rest ->
      let* hit = probe n in
      if hit then
        let* () = put_string (Printf.sprintf "  %s found %d\n" name order) in
        return (Some n)
      else search name order rest

let upward = List.init 3000 (fun i -> i)
let downward = List.init 3000 (fun i -> 2999 - i)
let striding = List.init 3000 (fun i -> i * 7 mod 3000)

(* Race the three strategies with nested either; the losers are killed. *)
let race_three =
  let* () = put_string "racing three search strategies...\n" in
  let* result =
    Combinators.either
      (search "upward" 1 upward)
      (Combinators.either
         (search "downward" 2 downward)
         (search "striding" 3 striding))
  in
  let flat =
    match result with
    | Either.Left r | Either.Right (Either.Left r) | Either.Right (Either.Right r)
      -> r
  in
  match flat with
  | Some n ->
      put_string
        (Printf.sprintf "winner: %d (%d*%d mod 9973 = %d)\n" n n n target)
  | None -> put_string "no solution\n"

(* Tasks make the same pattern first-class: spawn all, await the first via
   a shared channel, cancel the rest explicitly. *)
let portfolio =
  let* () = put_string "\nportfolio with explicit cancellation...\n" in
  let* results = Chan.create () in
  let spawn_strategy (name, order) =
    Task.spawn
      (let* r = search name 0 order in
       Chan.send results (name, r))
  in
  let* t1 = spawn_strategy ("upward", upward) in
  let* t2 = spawn_strategy ("downward", downward) in
  let* t3 = spawn_strategy ("striding", striding) in
  let* name, first = Chan.recv results in
  let* () = Task.cancel t1 in
  let* () = Task.cancel t2 in
  let* () = Task.cancel t3 in
  match first with
  | Some n ->
      put_string (Printf.sprintf "portfolio winner: %s with %d\n" name n)
  | None -> put_string "portfolio found nothing\n"

(* Speculation abandoned by a timeout: if no strategy answers within the
   budget we give up and use a default. *)
let budgeted =
  let* () = put_string "\nsearch under a 50us budget (will give up)...\n" in
  let* r =
    Combinators.timeout 50
      (search "slowpoke" 0 (List.filter (fun n -> n > 2500) upward))
  in
  match r with
  | Some (Some n) -> put_string (Printf.sprintf "found %d in time\n" n)
  | Some None -> put_string "exhausted the space in time\n"
  | None -> put_string "budget exceeded: using the default answer\n"

let () =
  let result =
    Runtime.run
      (let* () = race_three in
       let* () = portfolio in
       budgeted)
  in
  print_string result.Runtime.output;
  Printf.printf "\n(steps=%d, threads=%d, virtual time=%dus)\n"
    result.Runtime.steps result.Runtime.forks result.Runtime.time
