(* overload — the overload-robustness proof and its benchmark record.

     dune exec examples/overload.exe -- --kills 1 --jobs 2 \
       --json BENCH_overload.json

   Runs the full overload sweep (lib/fault/load_sweep) against both the
   supervised §11 server and the sharded server: open-loop load ramps
   at 1x/2x/5x/10x of nominal arrivals, then the same ramps re-run with
   resource-exhaustion plans armed (fd budget, backlog cap, send-buffer
   cap) and [--kills] thread kills layered at sampled scheduler steps
   of every schedule. Everything rides the simulated clock, so every
   curve in BENCH_overload.json is deterministic: same build, same
   numbers, for any [--jobs].

   The record exits nonzero if any gate fails — the driver's goodput
   gate (ok at 10x must hold at least half of 1x capacity: overload
   degrades service, it must not collapse it), the CoDel queue-delay
   gate (no admitted request sat in a bulkhead queue past
   2x queue_target), or any in-run invariant (lawful outcome per
   client, steady state restored once load drains).

   The checked-in BENCH_overload.json additionally carries
   baseline_estimates_ns for the bench group behind these curves —
   re-record with `dune exec bench/main.exe -- -only ovl -json` and
   merge when re-pinning (scripts/bench_check.sh reads them). *)

let report_json ppf (r : Fault.Load_sweep.report) =
  let point ppf (p : Fault.Load_sweep.point) =
    let t = p.Fault.Load_sweep.lp_tally in
    Format.fprintf ppf
      {|{ "mult": %d, "offered": %d, "ok": %d, "shed": %d, "late": %d, "transport": %d, "max_queue_delay_us": %d, "steps": %d }|}
      p.Fault.Load_sweep.lp_mult t.Fault.Load_sweep.lt_offered
      t.Fault.Load_sweep.lt_ok t.Fault.Load_sweep.lt_shed
      t.Fault.Load_sweep.lt_late t.Fault.Load_sweep.lt_transport
      t.Fault.Load_sweep.lt_max_qdelay p.Fault.Load_sweep.lp_steps
  in
  Format.fprintf ppf
    "    {\n\
    \      \"name\": %S,\n\
    \      \"capacity\": %d,\n\
    \      \"ramps\": [\n"
    r.Fault.Load_sweep.lr_case r.Fault.Load_sweep.lr_capacity;
  List.iteri
    (fun i p ->
      Format.fprintf ppf "        %a%s\n" point p
        (if i = List.length r.Fault.Load_sweep.lr_points - 1 then "" else ","))
    r.Fault.Load_sweep.lr_points;
  Format.fprintf ppf
    "      ],\n\
    \      \"kill_runs\": %d,\n\
    \      \"resource_ramps\": %d,\n\
    \      \"faulted_steps\": %d,\n\
    \      \"failures\": %d\n\
    \    }"
    r.Fault.Load_sweep.lr_kill_runs r.Fault.Load_sweep.lr_resource_ramps
    r.Fault.Load_sweep.lr_faulted_steps
    (List.length r.Fault.Load_sweep.lr_failures)

let () =
  let kills = ref 1 and jobs = ref 1 and json = ref "" in
  let rec parse = function
    | "--kills" :: v :: tl ->
        kills := int_of_string v;
        parse tl
    | "--jobs" :: v :: tl ->
        jobs := int_of_string v;
        parse tl
    | "--json" :: v :: tl ->
        json := v;
        parse tl
    | [] -> ()
    | arg :: _ ->
        Printf.eprintf
          "usage: overload [--kills K] [--jobs J] [--json FILE] (got %S)\n" arg;
        exit 1
  in
  parse (List.tl (Array.to_list Sys.argv));
  let reports =
    List.map
      (fun c ->
        let r =
          Fault.Load_sweep.sweep ~kills_per_ramp:!kills
            ~resources:Fault.Load_cases.overload_resources ~jobs:!jobs c
        in
        Format.printf "%a@." Fault.Load_sweep.pp_report r;
        r)
      Fault.Load_cases.overload
  in
  let failures =
    List.fold_left
      (fun acc r -> acc + List.length r.Fault.Load_sweep.lr_failures)
      0 reports
  in
  if !json <> "" then begin
    let oc = open_out !json in
    let ppf = Format.formatter_of_out_channel oc in
    Format.fprintf ppf
      {|{
  "schema_version": 1,
  "description": "Overload-robustness record (lib/fault/load_sweep over lib/server + lib/server/shard): open-loop load ramps on the simulated clock at 1x/2x/5x/10x of nominal arrival rate against the supervised and the sharded server, composed with resource-exhaustion plans (fd budget, listener backlog cap, send-buffer cap) and thread kills at sampled scheduler steps. Gates: goodput at 10x >= half of 1x capacity (shed, don't collapse), no admitted request past the CoDel queue-delay bound, a lawful outcome (200/503/504/transport) per surviving client, steady state restored once load drains. Deterministic: same build, same numbers, for any --jobs.",
  "command": "dune exec examples/overload.exe -- --kills %d --jobs %d --json BENCH_overload.json",
  "load": {
    "backend": "sim+chaos",
    "base_arrivals": %d,
    "window_us": %d,
    "queue_target_us": %d,
    "qdelay_bound_us": %d,
    "kills_per_ramp": %d,
    "cases": [
|}
      !kills !jobs Fault.Load_cases.base Fault.Load_cases.window
      Fault.Load_cases.queue_target Fault.Load_cases.qdelay_bound !kills;
    List.iteri
      (fun i r ->
        Format.fprintf ppf "%a%s\n" report_json r
          (if i = List.length reports - 1 then "" else ","))
      reports;
    Format.fprintf ppf
      "    ]\n  },\n  \"gates_passed\": %s\n}\n"
      (if failures = 0 then "true" else "false");
    Format.pp_print_flush ppf ();
    close_out oc;
    Printf.printf "record written to %s\n" !json
  end;
  if failures > 0 then begin
    Printf.eprintf "overload: %d gate failure(s)\n%!" failures;
    exit 1
  end
