(* Dining philosophers, three ways — a stress test for the combination of
   MVars (forks are locks!), timeouts, and asynchronous cancellation:

   1. The naive protocol deadlocks; the runtime's deadlock detector
      reports it.
   2. A timeout-based protocol (§7.3): a philosopher who cannot get the
      second fork within a budget puts the first one back — the paper's
      composable timeouts making an unreliable protocol safe.
   3. A waiter (quantity semaphore) admits at most N-1 philosophers to the
      table, which removes the circular wait entirely.

   Run with: dune exec examples/philosophers.exe *)

open Hio
open Hio_std
open Hio.Io.Syntax
open Hio.Io

let n_philosophers = 5
let meals_needed = 2

(* A fork is an MVar holding unit; taking it is picking it up. *)
let make_forks () =
  Combinators.parallel (List.init n_philosophers (fun _ -> Mvar.new_filled ()))

(* Everyone gets hungry at the same (virtual) moment — the adversarial
   case: simultaneous contention for every fork. *)
let think _i = sleep 7
let eat _i = sleep 5

(* 1. Naive: everyone grabs left then right. All schedules that let each
   philosopher take their left fork first then deadlock. *)
let naive_philosopher forks i =
  let left = List.nth forks i
  and right = List.nth forks ((i + 1) mod n_philosophers) in
  let rec dine meals =
    if meals = 0 then return ()
    else
      let* () = think i in
      let* () = Mvar.take left in
      (* force the doomed interleaving: let everyone grab their left *)
      let* () = yield in
      let* () = Mvar.take right in
      let* () = eat i in
      let* () = Mvar.put right () in
      let* () = Mvar.put left () in
      dine (meals - 1)
  in
  dine meals_needed

(* 2. Timeout + back-off, exception-safe via bracket: the first fork is
   always returned, whether we eat, time out, or are killed. *)
let patient_philosopher stats forks i =
  let left = List.nth forks i
  and right = List.nth forks ((i + 1) mod n_philosophers) in
  let try_once =
    Combinators.bracket (Mvar.take left)
      (fun () ->
        let* got_right = Combinators.timeout 10 (Mvar.take right) in
        match got_right with
        | Some () ->
            let* () = eat i in
            let* () = Mvar.put right () in
            return true
        | None ->
            let* () = lift (fun () -> stats.(i) <- stats.(i) + 1) in
            (* back off for a philosopher-specific time: with symmetric
               retries the table livelocks — everyone picks up, times out
               and retries in lockstep forever *)
            let* () = sleep (3 + (5 * i)) in
            return false)
      (fun () -> Mvar.put left ())
  in
  let rec dine meals =
    if meals = 0 then return ()
    else
      let* () = think i in
      let* ate = try_once in
      dine (if ate then meals - 1 else meals)
  in
  dine meals_needed

(* 3. The waiter: at most N-1 at the table. *)
let waited_philosopher waiter forks i =
  let left = List.nth forks i
  and right = List.nth forks ((i + 1) mod n_philosophers) in
  let rec dine meals =
    if meals = 0 then return ()
    else
      let* () = think i in
      let* () =
        Sem.with_unit waiter
          (Combinators.bracket_ (Mvar.take left)
             (Combinators.bracket_ (Mvar.take right) (eat i) (Mvar.put right ()))
             (Mvar.put left ()))
      in
      dine (meals - 1)
  in
  dine meals_needed

let run_protocol name make =
  let program =
    let* forks = make_forks () in
    make forks >>= fun tasks ->
    let rec await_all = function
      | [] -> return ()
      | t :: rest ->
          let* () = Task.await t in
          await_all rest
    in
    await_all tasks
  in
  let r = Runtime.run program in
  Printf.printf "%-22s %s (steps=%d, virtual time=%dus)\n" name
    (match r.Runtime.outcome with
    | Runtime.Value () -> "everyone ate        "
    | Runtime.Deadlock -> "DEADLOCK            "
    | Runtime.Uncaught e -> "uncaught " ^ Printexc.to_string e
    | Runtime.Out_of_steps -> "ran out of steps    ")
    r.Runtime.steps r.Runtime.time

let spawn_all philosopher forks =
  let rec go i acc =
    if i = n_philosophers then return (List.rev acc)
    else
      let* t = Task.spawn ~name:(Printf.sprintf "phil-%d" i) (philosopher forks i) in
      go (i + 1) (t :: acc)
  in
  go 0 []

let () =
  run_protocol "naive (left-right)" (spawn_all naive_philosopher);
  let stats = Array.make n_philosophers 0 in
  run_protocol "timeout + back-off" (spawn_all (patient_philosopher stats));
  Printf.printf "  back-offs per philosopher: %s\n"
    (String.concat " " (Array.to_list (Array.map string_of_int stats)));
  let waited forks =
    Sem.create (n_philosophers - 1) >>= fun waiter ->
    spawn_all (waited_philosopher waiter) forks
  in
  run_protocol "waiter (semaphore)" waited
