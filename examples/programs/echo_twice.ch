-- Reads two characters and echoes them:
--   chrun run examples/programs/echo_twice.ch -i hi
do {
  a <- getChar;
  b <- getChar;
  putChar a;
  putChar b;
  return (a == b)
}
