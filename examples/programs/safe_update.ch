-- The §5.2 protected update, as a standalone program file:
--   chrun check examples/programs/safe_update.ch
do {
  m <- newEmptyMVar;
  putMVar m 0;
  t <- forkIO (block (do {
    a <- takeMVar m;
    b <- catch (unblock (return (a + 1)))
               (\e -> do { putMVar m a; throw e });
    putMVar m b
  }));
  throwTo t #KillThread;
  takeMVar m
}
