-- Sequential timeouts cannot interfere (§7.3). The formal semantics
-- abstracts durations (rule (Sleep) is fully nondeterministic), so either
-- outcome (0 or 42) may be observed depending on the schedule — but the
-- first timeout's private Timeout exception can never leak into the
-- second (test suite claims:C4 proves this exhaustively on the smaller
-- single-timeout program).
--   chrun run -p examples/programs/timeout_nest.ch
do {
  inner <- timeout 10 (sleep 100);
  outer <- timeout 100 (sleep 10 >>= \u -> return 42);
  case outer of {
    Just v -> return v;
    Nothing -> return 0
  }
}
