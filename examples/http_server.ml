(* The paper's §11 prototype, on the hserver library: a fault-tolerant
   HTTP server facing a hostile mix of clients — fast ones, slow handlers,
   slowloris trickles, and garbage — followed by a graceful shutdown.

   Run with: dune exec examples/http_server.exe *)

open Hio
open Hio_std
open Hio.Io.Syntax
open Hio.Io
open Hserver

let handler =
  Server.route
    [
      ("/", fun _ -> Http.ok "index");
      ("/greet", fun body -> Http.ok ("hello, " ^ body));
      ("/work", fun body -> Http.ok (String.uppercase_ascii body));
    ]

(* a normal client *)
let polite server id path body =
  let* r =
    let* conn = Server.connect server in
    let* () =
      Http.write_request conn { Http.meth = "GET"; path; headers = []; body }
    in
    Http.read_response conn
  in
  put_string
    (Printf.sprintf "  client %-2d %-8s -> %d %s\n" id path r.Http.status
       r.Http.body)

(* a slowloris: sends one byte per 60us, forever *)
let slowloris server id =
  let* conn = Server.connect server in
  let* t =
    Io.fork
      (Combinators.forever
         (let* () = Http.Conn.send_string conn "X" in
          sleep 60))
  in
  let* r = Http.read_response conn in
  let* () = throw_to t Kill_thread in
  put_string
    (Printf.sprintf "  loris  %-2d          -> %d %s\n" id r.Http.status
       r.Http.body)

(* garbage on the wire *)
let vandal server id =
  let* conn = Server.connect server in
  let* () = Http.Conn.send_string conn "%%%garbage%%%\r\n\r\n" in
  let* r = Http.read_response conn in
  put_string
    (Printf.sprintf "  vandal %-2d          -> %d %s\n" id r.Http.status
       r.Http.body)

let main =
  let* server =
    Server.start
      ~backend:(Ev.Backend.sim ())
      ~config:
        { Server.default_config with request_timeout = 300; max_concurrent = 3;
          accept_queue = 16 }
      handler
  in
  let* () = put_string "server up\n" in
  let* tasks =
    Combinators.parallel_map Task.spawn
      [
        polite server 1 "/" "";
        polite server 2 "/greet" "world";
        slowloris server 3;
        polite server 4 "/work" "shout this";
        vandal server 5;
        polite server 6 "/missing" "";
        polite server 7 "/greet" "again";
      ]
  in
  let* () =
    let rec wait_all = function
      | [] -> return ()
      | t :: rest ->
          let* () = catch (Task.await t) (fun _ -> return ()) in
          wait_all rest
    in
    wait_all tasks
  in
  let* stats = Server.shutdown server in
  put_string
    (Printf.sprintf "shutdown: served=%d timeouts=%d bad=%d rejected=%d\n"
       stats.Server.served stats.Server.timeouts stats.Server.bad_requests
       stats.Server.rejected)

let () =
  let r = Runtime.run main in
  print_string r.Runtime.output;
  Printf.printf "(steps=%d, threads=%d, virtual time=%dus)\n" r.Runtime.steps
    r.Runtime.forks r.Runtime.time
