(* tcp_load — the real-TCP proof for the event manager.

     dune exec examples/tcp_load.exe -- --conns 10000 --reqs 5 --json BENCH_ev.json

   One scheduler thread, one epoll instance, [conns] keep-alive loopback
   connections each issuing [reqs] pipelone-free requests: every byte
   crosses a real socket, every would-block parks a green thread on the
   event manager, and every latency sample is wall-clock microseconds.
   The same binary also times the hierarchical timer wheel on the
   simulated clock (1k/10k/100k concurrent sleepers) so the two halves
   of the event manager — readiness and timers — land in one record.

   Client and server share the runtime, so a reported latency includes
   scheduling delay under 2x[conns] runnable green threads — that is the
   honest number for a cooperative scheduler, not a flattering one
   measured from an idle client.

   Dials are staggered through a semaphore: [conns] simultaneous SYNs
   against a listen backlog would overflow the kernel's accept queue and
   the dropped SYNs would retry on second-scale timers, measuring the
   kernel's politeness rather than ours. *)

open Hio
open Hio.Io
open Hio_std

let handler =
  Hserver.Server.route [ ("/hello", fun _ -> Hserver.Http.ok "hi") ]

let request =
  { Hserver.Http.meth = "GET"; path = "/hello"; headers = []; body = "" }

(* Wall-clock microsecond buckets for client-observed latency. *)
let latency_buckets =
  [ 50; 100; 200; 500; 1_000; 2_000; 5_000; 10_000; 20_000; 50_000;
    100_000; 200_000; 500_000; 1_000_000 ]

(* Smallest bucket upper bound covering quantile [q], from the
   cumulative counts; the +inf bucket reports as the largest finite
   bound (the value printed is "<= bound us"). *)
let percentile hist q =
  let total = Obs.Metrics.histogram_count hist in
  let need = max 1 (int_of_float (ceil (q *. float_of_int total))) in
  let rec find last = function
    | [] -> last
    | (Some ub, c) :: tl -> if c >= need then ub else find ub tl
    | (None, _) :: _ -> last
  in
  find 0 (Obs.Metrics.histogram_buckets hist)

let load_phase ~conns ~reqs ~reg ~lat backend =
  let config =
    {
      Hserver.Server.default_config with
      Hserver.Server.request_timeout = 5_000_000;
      max_concurrent = conns;
      accept_queue = 512;
      supervised = false;
      keep_alive = true;
    }
  in
  Hserver.Server.start ~config ~metrics:reg ~backend handler
  >>= fun server ->
  Sem.create 256 >>= fun dialing ->
  let one_request conn =
    lift Ev.Real.now_us >>= fun t0 ->
    Hserver.Http.write_request conn request >>= fun () ->
    Hserver.Http.read_response conn >>= fun resp ->
    lift (fun () -> Obs.Metrics.observe lat (Ev.Real.now_us () - t0))
    >>= fun () ->
    if resp.Hserver.Http.status <> 200 then
      throw (Failure (Printf.sprintf "status %d" resp.Hserver.Http.status))
    else return ()
  in
  let one_conn _ =
    Sem.with_unit dialing (Hserver.Server.connect server) >>= fun conn ->
    Combinators.repeat reqs (one_request conn) >>= fun () ->
    Hserver.Http.Conn.close conn
  in
  Combinators.parallel (List.init conns one_conn) >>= fun _ ->
  Hserver.Server.shutdown server

let run_load ~conns ~reqs =
  let backend = Ev.Real.create () in
  let reg = Obs.Metrics.create () in
  let lat =
    Obs.Metrics.histogram reg ~buckets:latency_buckets
      ~labels:[ ("backend", backend.Ev.Backend.b_name) ]
      "client_request_latency_us"
  in
  let config =
    Ev.Backend.install backend
      {
        Runtime.Config.default with
        Runtime.Config.max_steps = 2_000_000_000;
      }
  in
  let t0 = Ev.Real.now_us () in
  let r = Runtime.run ~config (load_phase ~conns ~reqs ~reg ~lat backend) in
  let wall_us = Ev.Real.now_us () - t0 in
  let stats =
    match r.Runtime.outcome with
    | Runtime.Value stats -> stats
    | Runtime.Uncaught e ->
        Printf.eprintf "load phase died: %s\n%!" (Printexc.to_string e);
        exit 1
    | Runtime.Deadlock ->
        Printf.eprintf "load phase deadlocked\n%!";
        exit 1
    | Runtime.Out_of_steps ->
        Printf.eprintf "load phase ran out of steps\n%!";
        exit 1
  in
  (stats, lat, wall_us, r.Runtime.steps)

(* Timer-wheel scaling on the simulated clock: [n] sleepers with
   deadlines spread over 65ms, wall-clock nanoseconds per timer for the
   whole arm/cascade/fire/wake cycle. *)
let wheel_phase n =
  let t0 = Ev.Real.now_us () in
  let r =
    Runtime.run
      ~config:
        {
          Runtime.Config.default with
          Runtime.Config.max_steps = 2_000_000_000;
        }
      (let rec spawn i =
         if i = n then return ()
         else
           fork (sleep ((i * 7919 mod 65_521) + 1)) >>= fun _ ->
           spawn (i + 1)
       in
       spawn 0 >>= fun () -> sleep 66_000)
  in
  (match r.Runtime.outcome with
  | Runtime.Value () -> ()
  | _ ->
      Printf.eprintf "wheel phase (n=%d) failed\n%!" n;
      exit 1);
  let wall_us = Ev.Real.now_us () - t0 in
  wall_us * 1_000 / n

let () =
  let conns = ref 10_000 and reqs = ref 5 and json = ref "" in
  let rec parse = function
    | "--conns" :: v :: tl ->
        conns := int_of_string v;
        parse tl
    | "--reqs" :: v :: tl ->
        reqs := int_of_string v;
        parse tl
    | "--json" :: v :: tl ->
        json := v;
        parse tl
    | [] -> ()
    | arg :: _ ->
        Printf.eprintf
          "usage: tcp_load [--conns N] [--reqs R] [--json FILE] (got %S)\n" arg;
        exit 1
  in
  parse (List.tl (Array.to_list Sys.argv));
  (* Two fds per in-process connection (client end + server end), plus
     listener, epoll, stdio and slack; shrink the run rather than die on
     EMFILE if the hard limit wins (raising it past the hard cap needs
     CAP_SYS_RESOURCE, which sandboxes tend to drop). *)
  let requested = !conns in
  let limit = Ev.Real.fd_limit ((2 * !conns) + 256) in
  if limit < (2 * !conns) + 64 then begin
    let scaled = (limit - 64) / 2 in
    Printf.eprintf "fd limit %d: scaling %d conns down to %d\n%!" limit !conns
      scaled;
    conns := scaled
  end;
  let conns = !conns and reqs = !reqs in
  let stats, lat, wall_us, steps = run_load ~conns ~reqs in
  let expected = conns * reqs in
  if stats.Hserver.Server.served <> expected then begin
    Printf.eprintf "served %d of %d requests\n%!" stats.Hserver.Server.served
      expected;
    exit 1
  end;
  let p50 = percentile lat 0.50
  and p90 = percentile lat 0.90
  and p99 = percentile lat 0.99 in
  let rps = expected * 1_000_000 / max 1 wall_us in
  Printf.printf
    "tcp_load: %d conns x %d reqs over %s/%s: served %d in %.2fs (%d req/s, \
     %d steps)\n"
    conns reqs "real" (Ev.Real.readiness ()) stats.Hserver.Server.served
    (float_of_int wall_us /. 1e6)
    rps steps;
  Printf.printf "latency (us, bucket upper bounds): p50 <= %d, p90 <= %d, \
                 p99 <= %d\n"
    p50 p90 p99;
  (* Warm up the allocator/GC after the load phase so the 1k figure is
     not dominated by the first post-load major collection. *)
  ignore (wheel_phase 1_000);
  let wheel =
    List.map (fun n -> (n, wheel_phase n)) [ 1_000; 10_000; 100_000 ]
  in
  List.iter
    (fun (n, ns) ->
      Printf.printf "timer wheel: %6d sleepers, %d ns/timer wall\n" n ns)
    wheel;
  if !json <> "" then begin
    let oc = open_out !json in
    Printf.fprintf oc
      {|{
  "schema_version": 1,
  "description": "Event manager record (lib/ev): real-TCP keep-alive load over the epoll-backed readiness source — client and server as green threads on one scheduler, every request crossing a loopback socket, latency in wall-clock microseconds from the client's send to its parsed response (bucket upper bounds, so p-values read '<= N us'); plus the hierarchical timer wheel timed on the simulated clock, wall nanoseconds per arm/cascade/fire/wake cycle across three orders of magnitude of concurrent sleepers.",
  "command": "dune exec examples/tcp_load.exe -- --conns %d --reqs %d --json BENCH_ev.json",
  "load": {
    "backend": "real",
    "readiness": "%s",
    "connections": %d,
    "connections_requested": %d,
    "fd_limit": %d,
    "fd_note": "client and server are both in-process, so each connection costs two fds; when the hard RLIMIT_NOFILE refuses 2x the requested connections (CAP_SYS_RESOURCE dropped, as in sandboxes) the harness scales down to fit rather than die on EMFILE",
    "requests_per_connection": %d,
    "served": %d,
    "wall_s": %.3f,
    "requests_per_s": %d,
    "scheduler_steps": %d,
    "latency_us": { "p50": %d, "p90": %d, "p99": %d }
  },
  "timer_wheel": {
    "unit": "wall ns per timer, simulated clock",
%s
  }
}
|}
      requested reqs (Ev.Real.readiness ()) conns requested limit reqs
      stats.Hserver.Server.served
      (float_of_int wall_us /. 1e6)
      rps steps p50 p90 p99
      (String.concat ",\n"
         (List.map
            (fun (n, ns) -> Printf.sprintf {|    "sleepers_%d": %d|} n ns)
            wheel));
    close_out oc;
    Printf.printf "record written to %s\n" !json
  end
