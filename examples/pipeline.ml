(* A three-stage streaming pipeline over bounded channels, with
   back-pressure, a per-item processing timeout, and cancellation that
   drains cleanly — the "robust, modular programs" the paper's abstract
   promises, composed entirely from §7 combinators and MVar structures.

     producer ──b1──▶ workers (xN, semaphore-bounded) ──b2──▶ consumer

   Midway through, the supervisor cancels the whole pipeline with throwTo;
   every stage shuts down via its finally/bracket cleanups, and the
   channels are left consistent.

   Run with: dune exec examples/pipeline.exe *)

open Hio
open Hio_std
open Hio.Io.Syntax
open Hio.Io

let stage_capacity = 4
let n_workers = 3

type stats = {
  mutable produced : int;
  mutable processed : int;
  mutable timed_out : int;
  mutable consumed : int;
}

(* Stage 1: produce numbered jobs, respecting back-pressure. *)
let producer stats jobs =
  let rec go i =
    let* () = Bchan.send jobs i in
    let* () = lift (fun () -> stats.produced <- i) in
    let* () = sleep 2 in
    go (i + 1)
  in
  Combinators.finally (go 1) (put_string "producer: stopped\n")

(* Stage 2: workers transform jobs under a per-item deadline. *)
let worker stats jobs results id =
  let process job =
    (* pretend work: cost grows with the job number so later jobs start
       missing the deadline *)
    let* () = sleep (job * 3 mod 40) in
    return (job * job)
  in
  let rec go () =
    let* job = Bchan.recv jobs in
    let* outcome = Combinators.timeout 25 (process job) in
    let* () =
      match outcome with
      | Some result ->
          let* () = lift (fun () -> stats.processed <- stats.processed + 1) in
          Bchan.send results (job, result)
      | None ->
          let* () = lift (fun () -> stats.timed_out <- stats.timed_out + 1) in
          return ()
    in
    go ()
  in
  Combinators.finally (go ())
    (put_string (Printf.sprintf "worker %d: stopped\n" id))

(* Stage 3: consume and log. *)
let consumer stats results =
  let rec go () =
    let* job, result = Bchan.recv results in
    let* () = lift (fun () -> stats.consumed <- stats.consumed + 1) in
    let* () =
      if job mod 5 = 0 then
        put_string (Printf.sprintf "  consumed %d -> %d\n" job result)
      else return ()
    in
    go ()
  in
  Combinators.finally (go ()) (put_string "consumer: stopped\n")

let pipeline stats =
  let* jobs = Bchan.create stage_capacity in
  let* results = Bchan.create stage_capacity in
  let* producer_task = Task.spawn ~name:"producer" (producer stats jobs) in
  let* worker_tasks =
    Combinators.parallel_map
      (fun id -> Task.spawn ~name:(Printf.sprintf "worker-%d" id)
          (worker stats jobs results id))
      (List.init n_workers (fun i -> i + 1))
  in
  let* consumer_task = Task.spawn ~name:"consumer" (consumer stats results) in
  (* let it run for a while, then shut the whole thing down *)
  let* () = sleep 300 in
  let* () = put_string "supervisor: shutting down\n" in
  let all = (producer_task :: worker_tasks) @ [ consumer_task ] in
  let* () =
    let rec cancel_all = function
      | [] -> return ()
      | t :: rest -> Task.cancel t >>= fun () -> cancel_all rest
    in
    cancel_all all
  in
  let rec settle = function
    | [] -> return ()
    | t :: rest ->
        let* () = catch (Task.await t) (fun _ -> return ()) in
        settle rest
  in
  settle all

let () =
  let stats = { produced = 0; processed = 0; timed_out = 0; consumed = 0 } in
  let r = Runtime.run (pipeline stats) in
  print_string r.Runtime.output;
  Printf.printf
    "produced=%d processed=%d timed_out=%d consumed=%d (steps=%d, %dus)\n"
    stats.produced stats.processed stats.timed_out stats.consumed
    r.Runtime.steps r.Runtime.time;
  match r.Runtime.outcome with
  | Runtime.Value () -> print_endline "pipeline shut down cleanly"
  | _ -> print_endline "pipeline did not shut down cleanly"
