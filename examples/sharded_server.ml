(* sharded_server — the actor-layer proof and its benchmark record.

     dune exec examples/sharded_server.exe -- --shards 4 --clients 32 \
       --reqs 8 --json BENCH_actor.json

   The §11 server sharded over lib/actor: [shards] serving actors
   behind a consistent-hash router, each with its own nested supervisor
   and bulkhead (lib/server/shard.ml). Three measured phases, all on
   the simulated clock so every number is deterministic:

   1. keep-alive load, sharded vs single — the same [clients] x [reqs]
      keyed load against [--shards N] and against one shard. Per-shard
      capacity is fixed, so sharding multiplies the serving capacity
      and virtual completion time drops roughly by the shard count:
      that is the throughput claim in BENCH_actor.json.
   2. mailbox ping — two actors [call]ing each other, scheduler steps
      per round-trip: the constant behind every actor interaction.
   3. message ring — a token around [ring] actors for [laps] laps,
      steps per hop: mailbox latency with many mailboxes in play. *)

open Hio
open Hio.Io
open Hio_std
open Hactor

(* Each request "renders" for work_us of virtual time; keep-alive
   clients issue [reqs] requests per connection. *)
let work_us = 100

let handler (_ : Hserver.Http.request) =
  sleep work_us >>= fun () -> return (Hserver.Http.ok "hi")

let request =
  { Hserver.Http.meth = "GET"; path = "/hello"; headers = []; body = "" }

let config =
  {
    Hserver.Server.default_config with
    Hserver.Server.request_timeout = 1_000_000;
    max_concurrent = 4;
    max_waiting = 64;
    keep_alive = true;
  }

(* --- phase 1: keep-alive load, sharded vs single ------------------------- *)

let load_phase ~shards ~clients ~reqs =
  Hserver.Shard.start ~config ~shards handler >>= fun srv ->
  let one_client i =
    Hserver.Shard.connect ~key:(Printf.sprintf "client-%d" i) srv
    >>= fun conn ->
    Combinators.repeat reqs
      ( Hserver.Http.write_request conn request >>= fun () ->
        Hserver.Http.read_response conn >>= fun r ->
        if r.Hserver.Http.status <> 200 then
          throw (Failure (Printf.sprintf "status %d" r.Hserver.Http.status))
        else return () )
    >>= fun () -> Hserver.Http.Conn.close conn
  in
  Combinators.parallel (List.init clients one_client) >>= fun _ ->
  Hserver.Shard.shutdown srv

let run_load ~shards ~clients ~reqs =
  let r = Runtime.run (load_phase ~shards ~clients ~reqs) in
  match r.Runtime.outcome with
  | Runtime.Value stats ->
      if stats.Hserver.Server.served <> clients * reqs then begin
        Printf.eprintf "shards=%d: served %d of %d\n%!" shards
          stats.Hserver.Server.served (clients * reqs);
        exit 1
      end;
      (stats, r.Runtime.time, r.Runtime.steps)
  | Runtime.Uncaught e ->
      Printf.eprintf "load (shards=%d) died: %s\n%!" shards
        (Printexc.to_string e);
      exit 1
  | _ ->
      Printf.eprintf "load (shards=%d) did not finish\n%!" shards;
      exit 1

(* --- phase 2: mailbox ping ------------------------------------------------ *)

let ping_phase rounds =
  Actor.spawn ~name:"ponger" (fun self ->
      Combinators.forever
        (Actor.receive self (fun (`Ping r) -> Some r) >>= fun r ->
         Actor.reply r ()))
  >>= fun ponger ->
  Combinators.repeat rounds (Actor.call ponger (fun r -> `Ping r))
  >>= fun () ->
  Actor.stop ponger >>= fun _ -> return ()

let run_ping rounds =
  let r = Runtime.run (ping_phase rounds) in
  match r.Runtime.outcome with
  | Runtime.Value () -> r.Runtime.steps / rounds
  | _ ->
      Printf.eprintf "ping phase did not finish\n%!";
      exit 1

(* --- phase 3: message ring ------------------------------------------------ *)

let ring_phase n laps =
  Mvar.new_empty >>= fun finished ->
  let rec mk i acc =
    if i = n then return (Array.of_list (List.rev acc))
    else
      Actor.create ~name:(Printf.sprintf "ring-%d" i) () >>= fun a ->
      mk (i + 1) (a :: acc)
  in
  mk 0 [] >>= fun members ->
  let body i self =
    Combinators.forever
      ( Actor.receive self (fun (`Token k) -> Some k) >>= fun k ->
        if k = 0 then Mvar.put finished ()
        else Actor.send members.((i + 1) mod n) (`Token (k - 1)) )
  in
  let rec start i =
    if i = n then return ()
    else Actor.fork_body members.(i) (body i) >>= fun () -> start (i + 1)
  in
  start 0 >>= fun () ->
  Actor.send members.(0) (`Token (n * laps)) >>= fun () ->
  Mvar.take finished >>= fun () ->
  let rec stop_all i =
    if i = n then return ()
    else Actor.kill members.(i) >>= fun () -> stop_all (i + 1)
  in
  stop_all 0

let run_ring n laps =
  let r = Runtime.run (ring_phase n laps) in
  match r.Runtime.outcome with
  | Runtime.Value () -> r.Runtime.steps / (n * laps)
  | _ ->
      Printf.eprintf "ring phase did not finish\n%!";
      exit 1

let () =
  let shards = ref 4
  and clients = ref 32
  and reqs = ref 8
  and json = ref "" in
  let rec parse = function
    | "--shards" :: v :: tl ->
        shards := int_of_string v;
        parse tl
    | "--clients" :: v :: tl ->
        clients := int_of_string v;
        parse tl
    | "--reqs" :: v :: tl ->
        reqs := int_of_string v;
        parse tl
    | "--json" :: v :: tl ->
        json := v;
        parse tl
    | [] -> ()
    | arg :: _ ->
        Printf.eprintf
          "usage: sharded_server [--shards N] [--clients C] [--reqs R] \
           [--json FILE] (got %S)\n"
          arg;
        exit 1
  in
  parse (List.tl (Array.to_list Sys.argv));
  let shards = !shards and clients = !clients and reqs = !reqs in
  let total = clients * reqs in
  let stats_n, time_n, steps_n = run_load ~shards ~clients ~reqs in
  let stats_1, time_1, steps_1 = run_load ~shards:1 ~clients ~reqs in
  let rps time = total * 1_000_000 / max 1 time in
  Printf.printf
    "sharded : %d shards, %d clients x %d reqs: served %d in %dus virtual \
     (%d req/s, %d steps, restarts=%d)\n"
    shards clients reqs stats_n.Hserver.Server.served time_n (rps time_n)
    steps_n stats_n.Hserver.Server.restarts;
  Printf.printf
    "single  : 1 shard,  %d clients x %d reqs: served %d in %dus virtual \
     (%d req/s, %d steps, restarts=%d)\n"
    clients reqs stats_1.Hserver.Server.served time_1 (rps time_1) steps_1
    stats_1.Hserver.Server.restarts;
  Printf.printf "speedup : %.2fx virtual time\n"
    (float_of_int time_1 /. float_of_int (max 1 time_n));
  let ping_rounds = 1_000 in
  let ping_steps = run_ping ping_rounds in
  Printf.printf "mailbox : call round-trip, %d steps (over %d rounds)\n"
    ping_steps ping_rounds;
  let ring_n = 16 and ring_laps = 50 in
  let hop_steps = run_ring ring_n ring_laps in
  Printf.printf "ring    : %d actors x %d laps, %d steps/hop\n" ring_n
    ring_laps hop_steps;
  if time_n >= time_1 then begin
    Printf.eprintf
      "sharding did not beat single (%dus >= %dus) — capacity math is off\n%!"
      time_n time_1;
    exit 1
  end;
  if !json <> "" then begin
    let oc = open_out !json in
    Printf.fprintf oc
      {|{
  "schema_version": 1,
  "description": "Actor-layer record (lib/actor + lib/server/shard): the sharded §11 server vs a single shard on the same keyed keep-alive load, on the simulated clock — per-shard capacity is fixed (bulkhead max_concurrent=%d), so N shards multiply serving capacity and virtual completion time drops accordingly; plus mailbox constants, scheduler steps per call round-trip (two actors) and per hop (a %d-actor message ring), the fixed costs behind every actor interaction. Deterministic: same seed, same numbers.",
  "command": "dune exec examples/sharded_server.exe -- --shards %d --clients %d --reqs %d --json BENCH_actor.json",
  "load": {
    "backend": "sim",
    "keep_alive": true,
    "clients": %d,
    "requests_per_client": %d,
    "work_us_per_request": %d,
    "per_shard_capacity": %d,
    "sharded": { "shards": %d, "served": %d, "virtual_us": %d, "requests_per_virtual_s": %d, "scheduler_steps": %d },
    "single":  { "shards": 1, "served": %d, "virtual_us": %d, "requests_per_virtual_s": %d, "scheduler_steps": %d },
    "speedup_virtual_time": %.2f
  },
  "mailbox": {
    "unit": "scheduler steps",
    "call_round_trip": %d,
    "ring_hop": %d,
    "ring_actors": %d,
    "ring_laps": %d
  }
}
|}
      config.Hserver.Server.max_concurrent ring_n shards clients reqs clients
      reqs work_us config.Hserver.Server.max_concurrent shards
      stats_n.Hserver.Server.served time_n (rps time_n) steps_n
      stats_1.Hserver.Server.served time_1 (rps time_1) steps_1
      (float_of_int time_1 /. float_of_int (max 1 time_n))
      ping_steps hop_steps ring_n ring_laps;
    close_out oc;
    Printf.printf "record written to %s\n" !json
  end
