(* Watching the runtime work: the scheduler event tracer replays §5.1's
   story at the event level — you can see the exact moment the kill is
   delivered inside the vulnerable window, and how Mvar.modify's mask
   defers it to a safe point instead.

   Run with: dune exec examples/event_trace.exe *)

open Hio
open Hio.Io

let run_traced title prog =
  Printf.printf "\n== %s ==\n" title;
  let config =
    {
      Runtime.Config.default with
      Runtime.Config.tracer =
        Some (fun e -> Fmt.pr "    %a@." Runtime.pp_event e);
    }
  in
  let r = Runtime.run ~config prog in
  Printf.printf "  outcome: %s\n"
    (match r.Runtime.outcome with
    | Runtime.Value v -> Printf.sprintf "lock holds %d" v
    | Runtime.Deadlock -> "DEADLOCK — the lock was lost"
    | Runtime.Uncaught e -> "uncaught " ^ Printexc.to_string e
    | Runtime.Out_of_steps -> "out of steps")

let vulnerable m =
  Mvar.take m >>= fun x ->
  (* a long unprotected window while the lock is held *)
  yield >>= fun () ->
  yield >>= fun () ->
  yield >>= fun () -> Mvar.put m (x + 1)

let protected m =
  Mvar.modify m (fun x ->
      yield >>= fun () ->
      yield >>= fun () ->
      yield >>= fun () -> return (x + 1))

let scenario update =
  Mvar.new_filled 0 >>= fun m ->
  fork ~name:"worker" (update m) >>= fun t ->
  yield >>= fun () ->
  yield >>= fun () ->
  throw_to t Kill_thread >>= fun () -> Mvar.take m

let () =
  run_traced "unprotected take/put, kill mid-update" (scenario vulnerable);
  run_traced "Mvar.modify (§5.2), same kill" (scenario protected)
