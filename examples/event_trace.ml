(* Watching the runtime work: the Obs recorder replays §5.1's story at the
   event level — you can see the exact moment the kill is delivered inside
   the vulnerable window, and how Mvar.modify's mask defers it to a safe
   point instead.

   Unlike a raw Runtime.Config.tracer (which prints as it goes), Obs.Rec
   records into a bounded ring stamped with the virtual-step clock, so the
   run can be inspected afterwards: pretty-printed, folded into a metrics
   registry, or exported as Chrome trace-event JSON for chrome://tracing.

   Run with: dune exec examples/event_trace.exe *)

open Hio
open Hio.Io

let run_recorded title prog =
  Printf.printf "\n== %s ==\n" title;
  let recorder = Obs.Rec.create () in
  let registry = Obs.Metrics.create () in
  let config =
    Obs.Runtime_obs.metrics registry
      (Obs.Rec.attach recorder Runtime.Config.default)
  in
  let r = Runtime.run ~config prog in
  List.iter
    (fun e -> Fmt.pr "    %a@." Obs.Rec.pp_entry e)
    (Obs.Rec.entries recorder);
  Printf.printf "  outcome: %s\n"
    (match r.Runtime.outcome with
    | Runtime.Value v -> Printf.sprintf "lock holds %d" v
    | Runtime.Deadlock -> "DEADLOCK — the lock was lost"
    | Runtime.Uncaught e -> "uncaught " ^ Printexc.to_string e
    | Runtime.Out_of_steps -> "out of steps");
  Printf.printf "  deliveries: %d in %d steps\n"
    (Obs.Metrics.counter_value
       (Obs.Metrics.counter registry "hio_deliveries_total"))
    (Obs.Metrics.counter_value (Obs.Metrics.counter registry "hio_steps_total"));
  recorder

let vulnerable m =
  Mvar.take m >>= fun x ->
  (* a long unprotected window while the lock is held *)
  yield >>= fun () ->
  yield >>= fun () ->
  yield >>= fun () -> Mvar.put m (x + 1)

let protected m =
  Mvar.modify m (fun x ->
      yield >>= fun () ->
      yield >>= fun () ->
      yield >>= fun () -> return (x + 1))

let scenario update =
  Mvar.new_filled 0 >>= fun m ->
  fork ~name:"worker" (update m) >>= fun t ->
  yield >>= fun () ->
  yield >>= fun () ->
  throw_to t Kill_thread >>= fun () -> Mvar.take m

let () =
  let _ = run_recorded "unprotected take/put, kill mid-update" (scenario vulnerable) in
  let recorder = run_recorded "Mvar.modify (§5.2), same kill" (scenario protected) in
  (* The same recording, one more way: a Perfetto-loadable trace. *)
  let path = "event_trace_chrome.json" in
  Obs.Export.write ~path
    (Obs.Export.chrome ~process_name:"event_trace" (Obs.Rec.entries recorder));
  Printf.printf "\nchrome trace written to %s (load in chrome://tracing)\n" path
