(* Quickstart: a tour of the hio API — threads, MVars, asynchronous
   exceptions, masking, and the §7 combinators.

   Run with: dune exec examples/quickstart.exe *)

open Hio
open Hio_std
open Hio.Io.Syntax
open Hio.Io

let section name = put_string (Printf.sprintf "\n== %s ==\n" name)

(* 1. Threads communicate through MVars. *)
let hello_mvars =
  let* () = section "MVars" in
  let* inbox = Mvar.new_empty in
  let* _t = fork ~name:"greeter" (Mvar.put inbox "hello from a thread") in
  let* msg = Mvar.take inbox in
  put_string (msg ^ "\n")

(* 2. throw_to cancels another thread; finally cleans up. *)
let cancellation =
  let* () = section "Cancellation" in
  let* t =
    fork ~name:"worker"
      (Combinators.finally
         (Combinators.forever yield)
         (put_string "worker: cleaned up\n"))
  in
  let* () = yield in
  let* () = put_string "main: killing the worker\n" in
  let* () = throw_to t Kill_thread in
  let* () = sleep 1 in
  put_string "main: worker is gone\n"

(* 3. block / unblock: the §5.2 safe-update protocol, packaged as
   Mvar.modify. The update cannot lose the MVar even if killed. *)
let safe_update =
  let* () = section "Masked update" in
  let* counter = Mvar.new_filled 41 in
  let* t = fork (Mvar.modify counter (fun x -> return (x + 1))) in
  let* () = throw_to t Kill_thread in
  let* () = sleep 1 in
  let* v = Mvar.take counter in
  put_string (Printf.sprintf "counter survived: %d\n" v)

(* 4. timeout is composable (§7.3). *)
let timeouts =
  let* () = section "Timeouts" in
  let slow = sleep 500 >>= fun () -> return "finished" in
  let* first = Combinators.timeout 100 slow in
  let* second = Combinators.timeout 1_000 slow in
  put_string
    (Printf.sprintf "100us budget: %s; 1000us budget: %s\n"
       (match first with Some s -> s | None -> "timed out")
       (match second with Some s -> s | None -> "timed out"))

(* 5. either races two computations and kills the loser (§7.2). *)
let racing =
  let* () = section "Racing" in
  let* winner =
    Combinators.either
      (sleep 30 >>= fun () -> return "tortoise")
      (sleep 10 >>= fun () -> return "hare")
  in
  put_string
    (match winner with
    | Either.Left s | Either.Right s -> Printf.sprintf "winner: %s\n" s)

let main =
  let* () = hello_mvars in
  let* () = cancellation in
  let* () = safe_update in
  let* () = timeouts in
  let* () = racing in
  return ()

let () =
  let result = Runtime.run main in
  print_string result.Runtime.output;
  Printf.printf "\n(%d scheduler steps, %d threads, %dus virtual time)\n"
    result.Runtime.steps result.Runtime.forks result.Runtime.time
