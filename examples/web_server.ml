(* A simulated fault-tolerant web server, after the paper's §11 prototype
   ("a Haskell web server [that] makes heavy use of time-outs,
   multithreading and exceptions", reference [8]).

   The "network" is simulated with channels: clients push requests whose
   handling time varies wildly; the server runs one thread per connection,
   imposes a per-request timeout with the composable §7.3 combinator,
   bounds concurrency with a quantity semaphore, and is finally shut down
   gracefully by throwTo-ing the listener.

   Run with: dune exec examples/web_server.exe *)

open Hio
open Hio_std
open Hio.Io.Syntax
open Hio.Io

type request = { client : int; url : string; work : int }

type stats = {
  mutable served : int;
  mutable timed_out : int;
  mutable rejected : int;
}

let request_timeout = 200
let max_concurrent = 4

(* Pretend to render a page: takes [work] microseconds of virtual time. *)
let handle stats req =
  let* () = sleep req.work in
  let* () = lift (fun () -> stats.served <- stats.served + 1) in
  put_string
    (Printf.sprintf "  [%3d] 200 OK       %-12s (%dus)\n" req.client req.url
       req.work)

let serve_connection stats sem req =
  (* Each connection: admission control, then a strictly-bounded handler.
     The timeout cannot leak into the logging: it is scoped to [handle]. *)
  Sem.with_unit sem
    (let* outcome = Combinators.timeout request_timeout (handle stats req) in
     match outcome with
     | Some () -> return ()
     | None ->
         let* () = lift (fun () -> stats.timed_out <- stats.timed_out + 1) in
         put_string
           (Printf.sprintf "  [%3d] 504 TIMEOUT  %-12s (needed %dus)\n"
              req.client req.url req.work))

let listener stats sem (incoming : request Chan.t) =
  let rec accept_loop () =
    let* req = Chan.recv incoming in
    let* _worker =
      fork ~name:(Printf.sprintf "conn-%d" req.client)
        (serve_connection stats sem req)
    in
    accept_loop ()
  in
  (* A graceful shutdown: when killed, report instead of vanishing. *)
  catch (accept_loop ()) (fun _ -> put_string "listener: shutting down\n")

let client incoming id =
  (* Clients arrive at random-ish intervals with varying work sizes. *)
  let url = [| "/index"; "/search"; "/report"; "/assets" |].(id mod 4) in
  let work = 37 * ((id * 13 mod 9) + 1) in
  let* () = sleep (17 * (id mod 7)) in
  Chan.send incoming { client = id; url; work }

let main =
  let stats = { served = 0; timed_out = 0; rejected = 0 } in
  let* incoming = Chan.create () in
  let* sem = Sem.create max_concurrent in
  let* () = put_string "server: listening (simulated)\n" in
  let* listener_t = fork ~name:"listener" (listener stats sem incoming) in
  (* 20 clients fire requests. *)
  let* clients =
    let rec spawn i acc =
      if i > 20 then return acc
      else
        let* t = Task.spawn (client incoming i) in
        spawn (i + 1) (t :: acc)
    in
    spawn 1 []
  in
  let* () =
    let rec wait_all = function
      | [] -> return ()
      | t :: rest ->
          let* () = Task.await t in
          wait_all rest
    in
    wait_all clients
  in
  (* Let in-flight requests drain, then shut the listener down. *)
  let* () = sleep 2_000 in
  let* () = throw_to listener_t Kill_thread in
  let* () = sleep 10 in
  let* () =
    put_string
      (Printf.sprintf "stats: served=%d timed_out=%d\n" stats.served
         stats.timed_out)
  in
  return (stats.served, stats.timed_out)

let () =
  let result = Runtime.run main in
  print_string result.Runtime.output;
  match result.Runtime.outcome with
  | Runtime.Value (served, timed_out) ->
      Printf.printf
        "\nvirtual time: %dus, steps: %d, threads: %d (served=%d, 504s=%d)\n"
        result.Runtime.time result.Runtime.steps result.Runtime.forks served
        timed_out
  | _ -> print_endline "server did not finish cleanly"
