(* A simulated fault-tolerant web server, after the paper's §11 prototype
   ("a Haskell web server [that] makes heavy use of time-outs,
   multithreading and exceptions", reference [8]).

   This used to hand-roll the whole thing from channels and semaphores;
   it now rides the hserver library, which packages the same §11
   discipline — one thread per connection, a per-request timeout built
   from the composable §7.3 combinator, bounded concurrency — behind
   [Server.start]. The simulated network is requested explicitly with
   [Ev.Backend.sim ()]: the implicit default is deprecated, and the same
   program runs on the real epoll backend by swapping that one argument
   (see examples/tcp_load.ml).

   Run with: dune exec examples/web_server.exe *)

open Hio
open Hio_std
open Hio.Io.Syntax
open Hio.Io
open Hserver

let request_timeout = 200
let max_concurrent = 4

(* Pretend to render a page: the body carries how many microseconds of
   virtual time the render takes. Long renders blow the request timeout
   and the client sees a 504 — the handler itself stays oblivious. *)
let handler (request : Http.request) =
  let work = int_of_string request.Http.body in
  let* () = sleep work in
  return (Http.ok (Printf.sprintf "rendered %s in %dus" request.Http.path work))

let client server id =
  let url = [| "/index"; "/search"; "/report"; "/assets" |].(id mod 4) in
  let work = 37 * ((id * 13 mod 9) + 1) in
  (* staggered arrivals: the timeout clock runs from accept, so a
     stampede would spend its whole budget queueing behind
     [max_concurrent] and 504 even the cheap renders *)
  let* () = sleep (40 * id) in
  let* conn = Server.connect server in
  let* () =
    Http.write_request conn
      { Http.meth = "GET"; path = url; headers = []; body = string_of_int work }
  in
  let* r = Http.read_response conn in
  put_string
    (Printf.sprintf "  [%3d] %d %-8s %-12s (%dus)\n" id r.Http.status
       (if r.Http.status = 200 then "OK" else "TIMEOUT")
       url work)

let main =
  let* server =
    Server.start
      ~backend:(Ev.Backend.sim ())
      ~config:
        { Server.default_config with request_timeout; max_concurrent }
      handler
  in
  let* () = put_string "server: listening (simulated)\n" in
  (* 20 clients fire requests. *)
  let* clients =
    let rec spawn i acc =
      if i > 20 then return acc
      else
        let* t = Task.spawn (client server i) in
        spawn (i + 1) (t :: acc)
    in
    spawn 1 []
  in
  let* () =
    let rec wait_all = function
      | [] -> return ()
      | t :: rest ->
          let* () = catch (Task.await t) (fun _ -> return ()) in
          wait_all rest
    in
    wait_all clients
  in
  let* stats = Server.shutdown server in
  let* () =
    put_string
      (Printf.sprintf "stats: served=%d timed_out=%d\n" stats.Server.served
         stats.Server.timeouts)
  in
  return (stats.Server.served, stats.Server.timeouts)

let () =
  let result = Runtime.run main in
  print_string result.Runtime.output;
  match result.Runtime.outcome with
  | Runtime.Value (served, timed_out) ->
      Printf.printf
        "\nvirtual time: %dus, steps: %d, threads: %d (served=%d, 504s=%d)\n"
        result.Runtime.time result.Runtime.steps result.Runtime.forks served
        timed_out
  | _ -> print_endline "server did not finish cleanly"
